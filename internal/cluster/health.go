package cluster

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// healthLoop probes every node each HealthEvery tick, re-syncing routes
// when a node (re)joins, promoting followers when an owner goes down, and —
// when MigrateThreshold is set — rebalancing the hottest tenant off the
// busiest node. A node is declared down only after Config.DownAfter
// consecutive probe failures; injected probe flaps (Config.Faults) count as
// failures, which is exactly what DownAfter exists to absorb.
func (r *Router) healthLoop() {
	defer r.loops.Done()
	tick := time.NewTicker(r.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		r.probeAll()
		r.persistLedgers()
		r.maybeReseed()
		r.maybeRebalance()
	}
}

// probeAll runs one probe round, handling down transitions (and the
// failover they trigger).
func (r *Router) probeAll() {
	for _, n := range r.nodes {
		err := r.probe(n)
		if err == nil {
			n.mu.Lock()
			n.fails = 0
			n.mu.Unlock()
			continue
		}
		n.mu.Lock()
		n.fails++
		fails := n.fails
		down := n.healthy && fails >= r.cfg.DownAfter
		if down {
			n.healthy = false
		}
		stillUp := n.healthy
		n.mu.Unlock()
		if down {
			r.logger.Warn("node down", "node", n.addr, "fails", fails, "err", err)
			r.failoverNode(n)
		} else if stillUp {
			r.logger.Warn("node probe failed, riding it out",
				"node", n.addr, "fails", fails, "down_after", r.cfg.DownAfter, "err", err)
		}
	}
}

// persistLedgers folds the current route ledgers into the route log as one
// compact counts event (only ledgers that moved are written). Restored
// ledgers therefore trail the truth by at most one health tick.
func (r *Router) persistLedgers() {
	r.mu.RLock()
	counts := make(map[string]int64, len(r.routes))
	for id, rt := range r.routes {
		counts[id] = rt.count.Load()
	}
	r.mu.RUnlock()
	r.rlog.persistCounts(counts)
}

// maybeReseed restores redundancy for one unreplicated route per tick —
// bounded work, so a mass degrade heals gradually instead of stalling the
// health loop.
func (r *Router) maybeReseed() {
	if !r.cfg.Replicate {
		return
	}
	var tenant string
	r.mu.RLock()
	for id, rt := range r.routes {
		if rt.follower < 0 && rt.mig == nil && rt.synced {
			tenant = id
			break
		}
	}
	r.mu.RUnlock()
	if tenant != "" {
		r.reseedFollower(tenant)
	}
}

// probe asks one node who it is. On the unhealthy→healthy transition the
// node's identity is checked against the cluster's and its tenants are
// re-synced into the routing table — except on the very first contact after
// a clean route-log restore, where the table is already authoritative and
// the restart path must stay O(1) (the re-sync survives as the *rejoin*
// consistency check, not a recovery step).
func (r *Router) probe(n *node) error {
	if r.cfg.Faults.ProbeFlap() {
		return fmt.Errorf("injected probe flap")
	}
	var info server.NodeInfo
	if err := r.getJSON(n.base+"/v1/node", &info); err != nil {
		return err
	}
	if err := r.checkIdentity(info); err != nil {
		return fmt.Errorf("identity mismatch: %v", err)
	}
	n.mu.Lock()
	was := n.healthy
	firstContact := !n.everUp
	n.healthy = true
	n.everUp = true
	n.info = info
	n.mu.Unlock()
	if !was {
		if firstContact && r.routesRestored > 0 {
			r.logger.Info("node adopted from restored routes",
				"node", n.addr, "tenants", info.Tenants, "served", info.Served)
			return nil
		}
		if err := r.syncNode(n); err != nil {
			n.mu.Lock()
			n.healthy = false
			n.mu.Unlock()
			return fmt.Errorf("route sync: %v", err)
		}
		r.logger.Info("node joined", "node", n.addr, "tenants", info.Tenants, "served", info.Served)
	}
	return nil
}

// syncNode folds one node's hosted tenants into the routing table. Routes
// for tenants the table does not know are created; routes already pointing
// at this node have their ledger reset to the node's served count (a node
// restarted from checkpoint may have lost a tail the ledger still counts —
// the node's state is the truth). When another node also claims the tenant,
// the higher served count wins — the footprint of a migration interrupted
// between extract and the source's checkpoint — EXCEPT on a route that has
// been promoted (epoch > 0): there the claimant is the dead old owner
// rejoining with state that includes arrivals the survivor also has, and
// adopting it would fork the stream. Ghosts are logged and skipped. A
// node hosting a route's follower replica is also left alone — the replica
// is supposed to mirror the owner's counts.
func (r *Router) syncNode(n *node) error {
	var snaps []*engine.TenantSnapshot
	if err := r.getJSON(n.base+"/v1/snapshots?compact=true", &snaps); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range snaps {
		rt, ok := r.routes[s.Tenant]
		switch {
		case !ok:
			rt = &route{node: n.idx, follower: -1, synced: true}
			rt.count.Store(int64(s.Served))
			r.routes[s.Tenant] = rt
			r.rlog.append(routeEvent{Op: "place", Tenant: s.Tenant, Node: n.addr, Count: int64(s.Served)})
		case rt.mig != nil:
			// Mid-migration state is the coordinator's to resolve.
		case rt.follower == n.idx:
			// The node hosts this tenant's replica; the owner's ledger rules.
		case rt.node == n.idx:
			if rt.count.Load() != int64(s.Served) {
				r.logger.Warn("ledger reset from node state",
					"tenant", s.Tenant, "ledger", rt.count.Load(), "served", s.Served, "node", n.addr)
			}
			rt.count.Store(int64(s.Served))
			rt.synced = true
		case rt.epoch > 0:
			r.logger.Warn("stale claimant ignored on promoted route (ghost)",
				"tenant", s.Tenant, "node", n.addr, "served", s.Served,
				"owner", r.nodes[rt.node].addr, "epoch", rt.epoch)
		case int64(s.Served) > rt.count.Load():
			r.logger.Warn("tenant rerouted to higher-served claimant",
				"tenant", s.Tenant, "node", n.addr, "served", s.Served,
				"prev_node", r.nodes[rt.node].addr, "ledger", rt.count.Load())
			rt.node = n.idx
			rt.count.Store(int64(s.Served))
			rt.synced = true
			r.rlog.append(routeEvent{Op: "flip", Tenant: s.Tenant, Node: n.addr,
				Follower: r.nodeAddr(rt.follower), Count: int64(s.Served), Epoch: rt.epoch})
		}
	}
	return nil
}

// maybeRebalance moves the hottest tenant off the busiest node when the
// nodes' windowed arrival rates spread past MigrateThreshold. Node load is
// judged by each node's own windowed serving rate (the same
// window_arrivals_per_sec /v1/metrics reports) — a rate the node computes
// over its serving window, robust to probe-interval jitter — rather than
// by raw served-count deltas between probes. The hottest tenant on the hot
// node is still picked by route-ledger delta (the router's own
// observation, no extra round trips).
func (r *Router) maybeRebalance() {
	if r.cfg.MigrateThreshold <= 1 {
		return
	}
	cm := r.Metrics()
	type load struct {
		n    *node
		rate float64
	}
	var loads []load
	for i, rep := range cm.PerNode {
		if !rep.Healthy || rep.Stale || rep.Metrics == nil {
			continue
		}
		loads = append(loads, load{r.nodes[i], rep.Metrics.WindowArrivalsPerSec})
	}
	if len(loads) < 2 {
		return
	}
	hot, cold := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l.rate > hot.rate {
			hot = l
		}
		if l.rate < cold.rate {
			cold = l
		}
	}
	// rebalanceFloor keeps window noise from triggering moves.
	const rebalanceFloor = 64.0
	if hot.rate < rebalanceFloor || hot.rate < r.cfg.MigrateThreshold*maxF(cold.rate, 1) {
		return
	}

	// Hottest tenant on the hot node by ledger delta — and only if the hot
	// node hosts more than one tenant (moving its only tenant would just
	// move the hotspot). The cold node must not host the tenant's replica.
	var tenant string
	var tenantDelta int64
	hosted := 0
	r.mu.RLock()
	for id, rt := range r.routes {
		if rt.node != hot.n.idx || rt.mig != nil {
			continue
		}
		hosted++
		d := rt.count.Load() - rt.lastCount
		rt.lastCount = rt.count.Load()
		if rt.follower == cold.n.idx {
			continue
		}
		if tenant == "" || d > tenantDelta {
			tenant, tenantDelta = id, d
		}
	}
	r.mu.RUnlock()
	if hosted < 2 || tenant == "" {
		return
	}
	r.logger.Info("rebalancing",
		"tenant", tenant, "from", hot.n.addr, "hot_rate", hot.rate,
		"to", cold.n.addr, "cold_rate", cold.rate)
	if _, err := r.Migrate(tenant, cold.n.addr); err != nil {
		r.logger.Error("rebalance migration failed", "tenant", tenant, "err", err)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
