package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Durable router state. The routing table and per-route arrival ledgers are
// persisted as a base snapshot (routes.ckpt.json, written atomically via
// tmp+rename exactly like the engine's checkpoints) plus an append-only
// JSON-lines journal (routes.journal) of route events. Every route mutation
// appends one event; ledger counts piggyback on the health tick as compact
// "counts" events. After rebaseEvery journal events the log re-bases: the
// folded state is snapshotted and the journal truncated — the route-table
// analogue of checkpoint v2's SealEvery.
//
// A router restart is therefore an O(1) load+replay of its own files: no
// node snapshot scans sit on the recovery path (the old full re-sync
// survives only as the rejoin consistency check, see health.go). Restored
// ledgers may lag the workers by the arrivals forwarded since the last
// counts event; every path that needs ledger exactness (migration quiesce)
// re-syncs the single route it touches first (route.synced).
//
// The same log doubles as the standby replication feed: followers subscribe
// and receive the current base followed by live events (standby.go).

const (
	routesBaseFile    = "routes.ckpt.json"
	routesJournalFile = "routes.journal"
	routeLogVersion   = 1
	rebaseEvery       = 256
	subBuffer         = 1024
)

// routeRecord is the durable per-tenant route: owner and follower node
// addresses (addresses, not indices — they survive router restarts and
// transfer to standbys with differently-ordered node lists), the arrival
// ledger, and the failover epoch.
type routeRecord struct {
	Node     string `json:"node"`
	Follower string `json:"follower,omitempty"`
	Count    int64  `json:"count"`
	Epoch    int64  `json:"epoch,omitempty"`
}

// routeEvent is one journal line. Op vocabulary:
//
//	place    — route created (tenant, node, follower, count, epoch)
//	flip     — migration completed: new owner + exact ledger
//	drop     — route removed
//	promote  — follower became owner (epoch bumped; follower is the new
//	           follower, possibly empty)
//	follower — follower reassigned or dropped (replication degrade/reseed)
//	counts   — ledger checkpoint for the listed tenants
type routeEvent struct {
	Seq      int64            `json:"seq"`
	Op       string           `json:"op"`
	Tenant   string           `json:"tenant,omitempty"`
	Node     string           `json:"node,omitempty"`
	Follower string           `json:"follower,omitempty"`
	Count    int64            `json:"count,omitempty"`
	Epoch    int64            `json:"epoch,omitempty"`
	Counts   map[string]int64 `json:"counts,omitempty"`
}

type routeBase struct {
	Version int                    `json:"version"`
	Seq     int64                  `json:"seq"`
	Routes  map[string]routeRecord `json:"routes"`
}

// routeLog folds route events into a current-state map, persists them when
// backed by a directory, and fans live events out to follower subscribers.
// A routeLog with dir=="" is memory-only (no persistence, still streamable)
// — every Router owns one so standbys can always follow.
type routeLog struct {
	mu      sync.Mutex
	dir     string
	journal *os.File
	state   map[string]routeRecord
	seq     int64
	events  int // journal events since last base
	subs    map[chan []byte]struct{}

	restored int // routes loaded from disk at open
}

// openRouteLog loads (or initializes) the durable route state under dir.
// An empty dir yields a memory-only log.
func openRouteLog(dir string) (*routeLog, error) {
	rl := &routeLog{
		dir:   dir,
		state: make(map[string]routeRecord),
		subs:  make(map[chan []byte]struct{}),
	}
	if dir == "" {
		return rl, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("route log: %w", err)
	}
	if data, err := os.ReadFile(filepath.Join(dir, routesBaseFile)); err == nil {
		var base routeBase
		if err := json.Unmarshal(data, &base); err != nil {
			return nil, fmt.Errorf("route log: corrupt %s: %w", routesBaseFile, err)
		}
		if base.Version != routeLogVersion {
			return nil, fmt.Errorf("route log: %s version %d, want %d", routesBaseFile, base.Version, routeLogVersion)
		}
		rl.seq = base.Seq
		for id, rec := range base.Routes {
			rl.state[id] = rec
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("route log: %w", err)
	}
	jpath := filepath.Join(dir, routesJournalFile)
	if data, err := os.ReadFile(jpath); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var ev routeEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				// A torn final line is the expected kill -9 artifact: the
				// event was never acknowledged anywhere, so dropping it (and
				// everything after it) is safe. Stop replay here.
				break
			}
			if ev.Seq <= rl.seq {
				continue // already folded into the base
			}
			rl.fold(ev)
			rl.seq = ev.Seq
			rl.events++
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("route log: %w", err)
	}
	rl.restored = len(rl.state)
	f, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("route log: %w", err)
	}
	rl.journal = f
	return rl, nil
}

// fold applies one event to the in-memory state. Callers hold rl.mu (or
// own rl exclusively during open).
func (rl *routeLog) fold(ev routeEvent) {
	switch ev.Op {
	case "place":
		rl.state[ev.Tenant] = routeRecord{Node: ev.Node, Follower: ev.Follower, Count: ev.Count, Epoch: ev.Epoch}
	case "flip", "promote":
		rec := rl.state[ev.Tenant]
		rec.Node = ev.Node
		rec.Follower = ev.Follower
		rec.Count = ev.Count
		rec.Epoch = ev.Epoch
		rl.state[ev.Tenant] = rec
	case "drop":
		delete(rl.state, ev.Tenant)
	case "follower":
		if rec, ok := rl.state[ev.Tenant]; ok {
			rec.Follower = ev.Follower
			rl.state[ev.Tenant] = rec
		}
	case "counts":
		for id, c := range ev.Counts {
			if rec, ok := rl.state[id]; ok {
				rec.Count = c
				rl.state[id] = rec
			}
		}
	}
}

// append assigns the next sequence number, folds, persists, and fans the
// event out to followers. Safe on a nil receiver (no log configured).
func (rl *routeLog) append(ev routeEvent) {
	if rl == nil {
		return
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.seq++
	ev.Seq = rl.seq
	rl.fold(ev)
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	line = append(line, '\n')
	if rl.journal != nil {
		rl.journal.Write(line)
		rl.events++
		if rl.events >= rebaseEvery {
			rl.rebaseLocked()
		}
	}
	for ch := range rl.subs {
		select {
		case ch <- line:
		default:
			// A stalled follower would otherwise corrupt its view; drop it —
			// it reconnects and receives a fresh base.
			close(ch)
			delete(rl.subs, ch)
		}
	}
}

// installBase replaces the folded state wholesale with a primary's base
// doc — the first frame of a follow stream. The standby's own base file is
// rewritten so its StateDir stays a valid restore point.
func (rl *routeLog) installBase(doc routeBase) {
	if rl == nil {
		return
	}
	rl.mu.Lock()
	rl.state = make(map[string]routeRecord, len(doc.Routes))
	for id, rec := range doc.Routes {
		rl.state[id] = rec
	}
	rl.seq = doc.Seq
	rl.rebaseLocked()
	rl.mu.Unlock()
}

// applyEvent folds one event received from a primary's follow stream,
// keeping the primary's sequence numbers (unlike append, which assigns
// fresh ones). Stale or duplicate events (seq not past the local state)
// are dropped — the redial path resends a base plus events the standby may
// partially have.
func (rl *routeLog) applyEvent(ev routeEvent) {
	if rl == nil {
		return
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if ev.Seq != 0 && ev.Seq <= rl.seq {
		return
	}
	rl.fold(ev)
	if ev.Seq != 0 {
		rl.seq = ev.Seq
	}
	if rl.journal != nil {
		if line, err := json.Marshal(ev); err == nil {
			rl.journal.Write(append(line, '\n'))
			rl.events++
			if rl.events >= rebaseEvery {
				rl.rebaseLocked()
			}
		}
	}
}

// persistCounts appends one compact counts event for every ledger that
// moved since the last persisted value. Called from the health tick.
func (rl *routeLog) persistCounts(counts map[string]int64) {
	if rl == nil {
		return
	}
	rl.mu.Lock()
	changed := make(map[string]int64)
	for id, c := range counts {
		if rec, ok := rl.state[id]; ok && rec.Count != c {
			changed[id] = c
		}
	}
	rl.mu.Unlock()
	if len(changed) == 0 {
		return
	}
	rl.append(routeEvent{Op: "counts", Counts: changed})
}

// rebaseLocked snapshots the folded state atomically and truncates the
// journal. Callers hold rl.mu.
func (rl *routeLog) rebaseLocked() {
	if rl.dir == "" {
		rl.events = 0
		return
	}
	base := routeBase{Version: routeLogVersion, Seq: rl.seq, Routes: rl.state}
	data, err := json.Marshal(&base)
	if err != nil {
		return
	}
	path := filepath.Join(rl.dir, routesBaseFile)
	tmp, err := os.CreateTemp(rl.dir, routesBaseFile+".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err == nil {
		if err := tmp.Sync(); err == nil {
			tmp.Close()
			if os.Rename(tmp.Name(), path) == nil {
				if rl.journal != nil {
					rl.journal.Truncate(0)
					rl.journal.Seek(0, 0)
				}
				rl.events = 0
				return
			}
		}
	}
	tmp.Close()
	os.Remove(tmp.Name())
}

// rebase forces a base snapshot (shutdown and explicit checkpoint).
func (rl *routeLog) rebase() {
	if rl == nil {
		return
	}
	rl.mu.Lock()
	rl.rebaseLocked()
	rl.mu.Unlock()
}

// snapshot returns the current folded state and sequence number.
func (rl *routeLog) snapshot() (map[string]routeRecord, int64) {
	if rl == nil {
		return nil, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	out := make(map[string]routeRecord, len(rl.state))
	for id, rec := range rl.state {
		out[id] = rec
	}
	return out, rl.seq
}

// subscribe registers a follower: it receives the encoded current base
// first (as returned), then every subsequent event line on ch until
// unsubscribed or dropped for stalling (ch is closed).
func (rl *routeLog) subscribe() (base []byte, ch chan []byte) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	doc := routeBase{Version: routeLogVersion, Seq: rl.seq, Routes: rl.state}
	base, _ = json.Marshal(&doc)
	ch = make(chan []byte, subBuffer)
	rl.subs[ch] = struct{}{}
	return base, ch
}

func (rl *routeLog) unsubscribe(ch chan []byte) {
	rl.mu.Lock()
	if _, ok := rl.subs[ch]; ok {
		delete(rl.subs, ch)
		close(ch)
	}
	rl.mu.Unlock()
}

// close rebases one last time (persisting final ledgers) and closes the
// journal and every follower stream.
func (rl *routeLog) close() {
	if rl == nil {
		return
	}
	rl.mu.Lock()
	rl.rebaseLocked()
	if rl.journal != nil {
		rl.journal.Close()
		rl.journal = nil
	}
	for ch := range rl.subs {
		close(ch)
		delete(rl.subs, ch)
	}
	rl.mu.Unlock()
}
