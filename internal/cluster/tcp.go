package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// upstream is one session's framed connection to one worker node. Writes
// take mu; the migration coordinator also takes mu to flush frames the
// owning session has buffered but not yet pushed to the wire.
type upstream struct {
	node int
	conn net.Conn
	bw   *bufio.Writer
	mu   sync.Mutex
	err  error // first write error; poisons further writes

	// refs maps tenant name → the binary wire ref this session has bound
	// on this upstream (BIND emitted on first use). Only the owning
	// session goroutine touches it, so it needs no lock.
	refs map[string]uint64
}

// writeFrame forwards one frame, re-framed with traceID when non-zero so
// the worker records the op under the router's (or the client's) trace id.
func (u *upstream) writeFrame(frame []byte, traceID uint64) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.err != nil {
		return u.err
	}
	u.err = server.WriteFrameTrace(u.bw, frame, traceID)
	return u.err
}

func (u *upstream) flush() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.err != nil {
		return u.err
	}
	u.err = u.bw.Flush()
	return u.err
}

func (r *Router) registerUpstream(u *upstream) {
	r.upMu.Lock()
	r.upstreams[u] = struct{}{}
	r.upMu.Unlock()
}

func (r *Router) unregisterUpstream(u *upstream) {
	r.upMu.Lock()
	delete(r.upstreams, u)
	r.upMu.Unlock()
}

// flushNodeUpstreams pushes every session's buffered frames for one node to
// the wire — the migration coordinator's half of the quiesce: the ledger
// counts frames at write-to-buffer time, so before waiting for the source's
// served count to reach the ledger, everything buffered must actually go.
func (r *Router) flushNodeUpstreams(nodeIdx int) {
	r.upMu.Lock()
	ups := make([]*upstream, 0, len(r.upstreams))
	for u := range r.upstreams {
		if u.node == nodeIdx {
			ups = append(ups, u)
		}
	}
	r.upMu.Unlock()
	for _, u := range ups {
		u.flush() //nolint:errcheck // a dead conn fails its own session; quiesce then times out loudly
	}
}

// session is one downstream TCP client's state: lazily-dialed upstream
// connections per node plus the count of arrivals absorbed into migration
// buffers (accepted, but not represented in any upstream's result frame).
//
// Binary wire state: refs holds the client's BIND declarations (consumed
// here, never forwarded — each upstream gets its own ref table), and the
// ack fields implement router-side windowed acks. The router acks at
// forward/buffer time with result code 0 and no latencies — its acks mean
// "accepted and routed", not "served"; the stream's final result frame is
// still the served/failed truth (see the wire spec in internal/server).
type session struct {
	r        *Router
	ups      map[int]*upstream
	buffered int
	// replicated counts arrivals this session dual-wrote to follower
	// upstreams; the followers' result frames count them too, so finish
	// subtracts them to keep the client's aggregate exactly-once.
	replicated int

	dw   *bufio.Writer // downstream writer: acks + the final result frame
	refs map[uint64]string

	window  int    // 0 until the client negotiates windowed acks
	seq     uint64 // arrivals accepted so far (any wire format)
	ackNext uint64 // first sequence number of the next ack frame

	scratch   []int  // demand-id decode scratch
	wbuf      []byte // re-framed upstream payload / ack payload scratch
	pendCodes []byte // per-arrival result codes awaiting the next ack frame
}

// maxRouterAckRun bounds the arrivals one router ack frame covers, so the
// codes buffer stays small even for enormous windows.
const maxRouterAckRun = 1 << 14

// emitAcks flushes the pending router-side ack run downstream.
func (s *session) emitAcks() error {
	if s.window == 0 || len(s.pendCodes) == 0 {
		return nil
	}
	s.wbuf = server.AppendWireAck(s.wbuf[:0], s.ackNext, s.pendCodes, nil)
	if err := server.WriteFrame(s.dw, s.wbuf); err != nil {
		return err
	}
	s.ackNext += uint64(len(s.pendCodes))
	s.pendCodes = s.pendCodes[:0]
	return s.dw.Flush()
}

// ack records n arrivals for seq/ack bookkeeping, each carrying the same
// result code. Windowed sessions carry per-op failures here (unknown
// tenant, owner unavailable) instead of killing the stream: the client
// learns exactly which window slots failed and the session keeps serving
// the tenants that still route.
func (s *session) ack(n int, code byte) error {
	s.seq += uint64(n)
	if s.window == 0 {
		return nil
	}
	for i := 0; i < n; i++ {
		s.pendCodes = append(s.pendCodes, code)
	}
	if len(s.pendCodes) >= maxRouterAckRun {
		return s.emitAcks()
	}
	return nil
}

// ackCodeFor maps a routing failure onto the wire ack-code vocabulary.
func ackCodeFor(err error) byte {
	switch {
	case err == nil:
		return server.WireAckOK
	case errors.Is(err, engine.ErrUnknownTenant):
		return server.WireAckUnknownTenant
	default:
		// Transport failures, dead upstreams, injected faults: the owner
		// is unavailable from this session's point of view.
		return server.WireAckUnavailable
	}
}

func (s *session) upstream(idx int) (*upstream, error) {
	if u, ok := s.ups[idx]; ok {
		if u.err != nil {
			return nil, u.err
		}
		return u, nil
	}
	n := s.r.nodes[idx]
	addr := n.tcp()
	if addr == "" {
		return nil, fmt.Errorf("cluster: node %s exposes no TCP listener", n.addr)
	}
	if s.r.cfg.Faults.DialFail() {
		return nil, &unavailableError{fmt.Errorf("cluster: dialing node %s: injected dial failure", n.addr)}
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing node %s: %v", n.addr, err)
	}
	conn = s.r.cfg.Faults.WrapConn(conn)
	u := &upstream{node: idx, conn: conn, bw: bufio.NewWriterSize(conn, 1<<16), refs: make(map[string]uint64)}
	s.ups[idx] = u
	s.r.registerUpstream(u)
	return u, nil
}

func (s *session) flushAll() {
	for _, u := range s.ups {
		u.flush() //nolint:errcheck // surfaced by the next write to the same upstream
	}
}

// arrive routes one arrival frame. Mirrors forwardArrivals for the framed
// protocol: buffer under migration, else write the raw frame to the owner
// under RLock with the ledger advancing at buffer-write time (flushes are
// the coordinator's and the idle loop's business). traceID (0 = untraced)
// rides the upstream frame header; a migration-buffered arrival drops it —
// the replay path is HTTP and the record would describe the wrong journey.
func (s *session) arrive(tenant string, point int, demands []int, frame []byte, traceID uint64) error {
	r := s.r
	r.mu.RLock()
	rt := r.routes[tenant]
	if rt == nil {
		r.mu.RUnlock()
		return fmt.Errorf("cluster: tenant %q has no route: %w", tenant, engine.ErrUnknownTenant)
	}
	if m := rt.mig; m != nil {
		// demands aliases the parser's scratch buffer — copy before it is
		// reused by the next frame.
		m.add(server.Arrival{Point: point, Demands: append([]int(nil), demands...)})
		r.mu.RUnlock()
		s.buffered++
		return nil
	}
	u, err := s.upstream(rt.node)
	if err == nil {
		if err = u.writeFrame(frame, traceID); err == nil {
			rt.count.Add(1)
		}
	}
	fidx := rt.follower
	var ferr error
	if err == nil && fidx >= 0 {
		// Dual-write the identical frame to the follower replica. A JSON
		// arrive frame names its tenant, so it forwards verbatim.
		if fu, fe := s.upstream(fidx); fe != nil {
			ferr = fe
		} else if ferr = fu.writeFrame(frame, 0); ferr == nil {
			s.replicated++
		}
	}
	r.mu.RUnlock()
	if ferr != nil {
		r.degradeFollower(tenant, fidx, ferr)
	}
	return err
}

// bindRef returns the upstream's ref for tenant, emitting a BIND frame the
// first time this session addresses the tenant on this upstream.
func (s *session) bindRef(u *upstream, tenant string) (uint64, error) {
	if ref, ok := u.refs[tenant]; ok {
		return ref, nil
	}
	ref := uint64(len(u.refs))
	s.wbuf = server.AppendWireBind(s.wbuf[:0], ref, tenant)
	if err := u.writeFrame(s.wbuf, 0); err != nil {
		return 0, err
	}
	u.refs[tenant] = ref
	return ref, nil
}

// routeBinary forwards one binary arrive/batch frame carrying count arrivals
// for tenant: buffered under migration (buffer re-decodes the frame's items
// with copied demand slices), else re-framed with the owner upstream's ref —
// everything after the ref is copied verbatim, never re-encoded. The ledger
// advances by count at buffer-write time, mirroring the JSON path.
func (s *session) routeBinary(tenant string, frame []byte, count int, traceID uint64, buffer func(add func(...server.Arrival))) error {
	r := s.r
	r.mu.RLock()
	rt := r.routes[tenant]
	if rt == nil {
		r.mu.RUnlock()
		return fmt.Errorf("cluster: tenant %q has no route: %w", tenant, engine.ErrUnknownTenant)
	}
	if m := rt.mig; m != nil {
		buffer(m.add)
		r.mu.RUnlock()
		s.buffered += count
		return nil
	}
	u, err := s.upstream(rt.node)
	if err == nil {
		var ref uint64
		if ref, err = s.bindRef(u, tenant); err == nil {
			if s.wbuf, err = server.RewireTenantRef(s.wbuf[:0], frame, ref); err == nil {
				if err = u.writeFrame(s.wbuf, traceID); err == nil {
					rt.count.Add(int64(count))
				}
			}
		}
	}
	fidx := rt.follower
	var ferr error
	if err == nil && fidx >= 0 {
		// Dual-write, re-framed with the follower upstream's own ref.
		if fu, fe := s.upstream(fidx); fe != nil {
			ferr = fe
		} else {
			var fref uint64
			if fref, ferr = s.bindRef(fu, tenant); ferr == nil {
				if s.wbuf, ferr = server.RewireTenantRef(s.wbuf[:0], frame, fref); ferr == nil {
					if ferr = fu.writeFrame(s.wbuf, 0); ferr == nil {
						s.replicated += count
					}
				}
			}
		}
	}
	r.mu.RUnlock()
	if ferr != nil {
		r.degradeFollower(tenant, fidx, ferr)
	}
	return err
}

// handleBinary dispatches one binary wire frame from the downstream client.
// BIND and WINDOW are consumed locally (each upstream gets its own ref
// table, and WINDOW is never forwarded — an upstream stream must produce
// exactly one result frame, so the router acks from its own layer instead).
func (s *session) handleBinary(frame []byte, traceID uint64) error {
	op, body, err := server.WireFrameKind(frame)
	if err != nil {
		return err
	}
	switch op {
	case server.WireBind:
		ref, tenant, err := server.DecodeWireBind(body)
		if err != nil {
			return err
		}
		if s.refs == nil {
			s.refs = make(map[uint64]string)
		}
		s.refs[ref] = tenant
		return nil
	case server.WireArrive:
		ref, point, demands, err := server.DecodeWireArrive(body, s.scratch[:0])
		if err != nil {
			return err
		}
		s.scratch = demands[:0]
		tenant, ok := s.refs[ref]
		if !ok {
			return fmt.Errorf("cluster: arrive ref %d: %w", ref, server.ErrWireRef)
		}
		err = s.routeBinary(tenant, frame, 1, traceID, func(add func(...server.Arrival)) {
			add(server.Arrival{Point: point, Demands: append([]int(nil), demands...)})
		})
		if err != nil {
			if s.window > 0 {
				// Windowed sessions report op-scoped failures in the ack
				// code instead of dying: the slot is consumed, the client
				// sees exactly which arrival failed and why.
				return s.ack(1, ackCodeFor(err))
			}
			return err
		}
		return s.ack(1, server.WireAckOK)
	case server.WireBatch:
		ref, count, items, err := server.DecodeWireBatchHeader(body)
		if err != nil {
			return err
		}
		tenant, ok := s.refs[ref]
		if !ok {
			return fmt.Errorf("cluster: batch ref %d: %w", ref, server.ErrWireRef)
		}
		// Validate the item bytes before forwarding: a malformed batch
		// passed through verbatim would poison the whole upstream stream,
		// failing unrelated tenants pinned to the same node.
		walk := items
		for i := 0; i < count; i++ {
			var demands []int
			if _, demands, walk, err = server.DecodeWireBatchItem(walk, s.scratch[:0]); err != nil {
				return err
			}
			s.scratch = demands[:0]
		}
		if len(walk) != 0 {
			return fmt.Errorf("cluster: %d trailing bytes after batch: %w", len(walk), server.ErrWireTruncated)
		}
		err = s.routeBinary(tenant, frame, count, traceID, func(add func(...server.Arrival)) {
			rest := items
			for i := 0; i < count; i++ {
				var point int
				var demands []int
				point, demands, rest, _ = server.DecodeWireBatchItem(rest, nil)
				add(server.Arrival{Point: point, Demands: demands})
			}
		})
		if err != nil {
			if s.window > 0 {
				// Whole-batch failure: every slot carries the same code.
				return s.ack(count, ackCodeFor(err))
			}
			return err
		}
		return s.ack(count, server.WireAckOK)
	case server.WireWindow:
		w, _, err := server.DecodeWireWindow(body)
		if err != nil {
			return err
		}
		if s.seq != 0 || s.window != 0 {
			return fmt.Errorf("cluster: window after first arrival: %w", server.ErrWireWindow)
		}
		s.window = w
		return nil
	case server.WireAck:
		return fmt.Errorf("cluster: ack frame from client: %w", server.ErrWireOp)
	}
	return nil // unreachable: WireFrameKind rejects unknown ops
}

func (r *Router) acceptLoop(ln net.Listener) {
	defer r.loops.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		r.connMu.Lock()
		r.conns[conn] = struct{}{}
		r.connMu.Unlock()
		r.tcpConns.Add(1)
		go func() {
			defer r.tcpConns.Done()
			r.serveConn(conn)
			r.connMu.Lock()
			delete(r.conns, conn)
			r.connMu.Unlock()
		}()
	}
}

// serveConn proxies one framed op stream: arrives forward as raw frames to
// their owner nodes, creates place the tenant and run over HTTP, and at
// half-close the session collects every node's result frame into one
// aggregate result — the same contract a single node gives, so loadgen and
// clients cannot tell a router from a server.
func (r *Router) serveConn(conn net.Conn) {
	defer conn.Close()
	sess := &session{
		r:       r,
		ups:     make(map[int]*upstream),
		dw:      bufio.NewWriterSize(conn, 1<<16),
		scratch: make([]int, 0, 64),
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	buf := make([]byte, 0, 4096)
	var failure error
	for failure == nil {
		// About to block on the downstream socket: push everything already
		// routed to the wire so nodes never wait on frames parked in our
		// write buffers while the client thinks them sent — and flush our
		// own pending acks for the same reason.
		if br.Buffered() == 0 {
			sess.flushAll()
			if err := sess.emitAcks(); err != nil {
				break // downstream gone; the result frame is undeliverable
			}
		}
		frame, wireID, err := server.ReadFrameTrace(br, buf)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				failure = err
			}
			break
		}
		if len(frame) == 0 {
			continue
		}
		if r.standby.Load() {
			// A passive standby serves exactly one op: "follow". Everything
			// else is refused with the unavailable code so clients rotate to
			// the active router.
			var op engine.Op
			if json.Unmarshal(frame, &op) == nil && op.Op == "follow" {
				r.serveFollow(sess) //nolint:errcheck // follower hangs up when done
				return
			}
			failure = fmt.Errorf("cluster: router is standby for %s: %w", r.cfg.StandbyOf, engine.ErrClosed)
			break
		}
		// Trace context: an inbound id is propagated as-is; otherwise the
		// router samples so cluster-wide tracing works even when clients
		// send plain frames.
		id := wireID
		if id == 0 {
			id = r.tracer.Sample()
		}
		if server.IsBinaryFrame(frame) {
			if failure = sess.handleBinary(frame, id); failure == nil {
				buf = frame[:0]
			}
			continue
		}
		if tenant, point, demands, ok := server.FastArrive(frame, sess.scratch[:0]); ok {
			err := sess.arrive(tenant, point, demands, frame, id)
			sess.scratch = demands[:0]
			if err != nil && sess.window == 0 {
				failure = err
				break
			}
			if failure = sess.ack(1, ackCodeFor(err)); failure == nil {
				buf = frame[:0]
			}
			continue
		}
		var op engine.Op
		if err := json.Unmarshal(frame, &op); err != nil {
			failure = fmt.Errorf("cluster: decoding op: %v", err)
			break
		}
		switch op.Op {
		case "create":
			failure = r.createTenant(op.Tenant, op.Universe, op.Distances, op.CostBySize)
		case "arrive":
			err := sess.arrive(op.Tenant, op.Point, op.Demands, frame, id)
			if err != nil && sess.window == 0 {
				failure = err
			} else {
				failure = sess.ack(1, ackCodeFor(err))
			}
		case "follow":
			// A standby (or any journal consumer) subscribing to the route
			// log: stream the base doc, then live events, until it hangs up.
			r.serveFollow(sess) //nolint:errcheck // follower hangs up when done
			return
		default:
			failure = fmt.Errorf("cluster: unsupported op %q", op.Op)
		}
		buf = frame[:0]
	}
	sess.emitAcks() //nolint:errcheck // the result frame below is the stream's truth
	res := sess.finish(failure)
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	if server.WriteFrame(sess.dw, payload) == nil {
		sess.dw.Flush() //nolint:errcheck // client may already be gone
	}
}

// finish closes every upstream for writing, collects the nodes' result
// frames, and folds them into the single result the downstream client gets:
// arrivals summed across nodes plus the migration-buffered ones, the first
// failure's message and code carried through.
func (s *session) finish(failure error) server.TCPResult {
	res := server.TCPResult{OK: failure == nil, Arrivals: s.buffered - s.replicated}
	if failure != nil {
		res.Error = failure.Error()
		res.Code = server.ErrorCode(failure)
	}
	idxs := make([]int, 0, len(s.ups))
	for idx := range s.ups {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		u := s.ups[idx]
		s.r.unregisterUpstream(u)
		nodeAddr := s.r.nodes[idx].addr
		nr, err := u.collect()
		if err != nil {
			if res.OK {
				res.OK = false
				res.Error = fmt.Sprintf("node %s: %v", nodeAddr, err)
			}
			continue
		}
		res.Arrivals += nr.Arrivals
		if !nr.OK && res.OK {
			res.OK = false
			res.Error = fmt.Sprintf("node %s: %s", nodeAddr, nr.Error)
			res.Code = nr.Code
		}
	}
	// Follower result frames counted every dual-written arrival a second
	// time; replicated (subtracted via the initial Arrivals value above)
	// keeps the aggregate exactly-once. Clamp for the degenerate case where
	// a follower upstream died before producing its result frame.
	if res.Arrivals < 0 {
		res.Arrivals = 0
	}
	return res
}

// serveFollow streams the route log to one follower (a standby router): the
// current base doc as the first frame, then one frame per journal event,
// until the follower hangs up, the log drops it for stalling, or the router
// shuts down. Journal lines keep their trailing newline — json.Unmarshal on
// the other end tolerates it.
func (r *Router) serveFollow(sess *session) error {
	base, ch := r.rlog.subscribe()
	defer r.rlog.unsubscribe(ch)
	if err := server.WriteFrame(sess.dw, base); err != nil {
		return err
	}
	if err := sess.dw.Flush(); err != nil {
		return err
	}
	r.logger.Info("follower attached", "base_bytes", len(base))
	for {
		select {
		case <-r.stop:
			return nil
		case line, ok := <-ch:
			if !ok {
				return nil // dropped for stalling or log closed
			}
			if err := server.WriteFrame(sess.dw, line); err != nil {
				return err
			}
			if err := sess.dw.Flush(); err != nil {
				return err
			}
		}
	}
}

// collect flushes, half-closes, and reads the node's result frame.
func (u *upstream) collect() (server.TCPResult, error) {
	defer u.conn.Close()
	if err := u.flush(); err != nil {
		return server.TCPResult{}, err
	}
	if tc, ok := u.conn.(*net.TCPConn); ok {
		tc.CloseWrite() //nolint:errcheck // read below surfaces a dead conn
	}
	u.conn.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	frame, err := server.ReadFrame(u.conn, nil)
	if err != nil {
		return server.TCPResult{}, fmt.Errorf("reading result: %v", err)
	}
	var res server.TCPResult
	if err := json.Unmarshal(frame, &res); err != nil {
		return server.TCPResult{}, fmt.Errorf("decoding result: %v", err)
	}
	return res, nil
}
