package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// upstream is one session's framed connection to one worker node. Writes
// take mu; the migration coordinator also takes mu to flush frames the
// owning session has buffered but not yet pushed to the wire.
type upstream struct {
	node int
	conn net.Conn
	bw   *bufio.Writer
	mu   sync.Mutex
	err  error // first write error; poisons further writes
}

// writeFrame forwards one frame, re-framed with traceID when non-zero so
// the worker records the op under the router's (or the client's) trace id.
func (u *upstream) writeFrame(frame []byte, traceID uint64) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.err != nil {
		return u.err
	}
	u.err = server.WriteFrameTrace(u.bw, frame, traceID)
	return u.err
}

func (u *upstream) flush() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.err != nil {
		return u.err
	}
	u.err = u.bw.Flush()
	return u.err
}

func (r *Router) registerUpstream(u *upstream) {
	r.upMu.Lock()
	r.upstreams[u] = struct{}{}
	r.upMu.Unlock()
}

func (r *Router) unregisterUpstream(u *upstream) {
	r.upMu.Lock()
	delete(r.upstreams, u)
	r.upMu.Unlock()
}

// flushNodeUpstreams pushes every session's buffered frames for one node to
// the wire — the migration coordinator's half of the quiesce: the ledger
// counts frames at write-to-buffer time, so before waiting for the source's
// served count to reach the ledger, everything buffered must actually go.
func (r *Router) flushNodeUpstreams(nodeIdx int) {
	r.upMu.Lock()
	ups := make([]*upstream, 0, len(r.upstreams))
	for u := range r.upstreams {
		if u.node == nodeIdx {
			ups = append(ups, u)
		}
	}
	r.upMu.Unlock()
	for _, u := range ups {
		u.flush() //nolint:errcheck // a dead conn fails its own session; quiesce then times out loudly
	}
}

// session is one downstream TCP client's state: lazily-dialed upstream
// connections per node plus the count of arrivals absorbed into migration
// buffers (accepted, but not represented in any upstream's result frame).
type session struct {
	r        *Router
	ups      map[int]*upstream
	buffered int
}

func (s *session) upstream(idx int) (*upstream, error) {
	if u, ok := s.ups[idx]; ok {
		if u.err != nil {
			return nil, u.err
		}
		return u, nil
	}
	n := s.r.nodes[idx]
	addr := n.tcp()
	if addr == "" {
		return nil, fmt.Errorf("cluster: node %s exposes no TCP listener", n.addr)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing node %s: %v", n.addr, err)
	}
	u := &upstream{node: idx, conn: conn, bw: bufio.NewWriterSize(conn, 1<<16)}
	s.ups[idx] = u
	s.r.registerUpstream(u)
	return u, nil
}

func (s *session) flushAll() {
	for _, u := range s.ups {
		u.flush() //nolint:errcheck // surfaced by the next write to the same upstream
	}
}

// arrive routes one arrival frame. Mirrors forwardArrivals for the framed
// protocol: buffer under migration, else write the raw frame to the owner
// under RLock with the ledger advancing at buffer-write time (flushes are
// the coordinator's and the idle loop's business). traceID (0 = untraced)
// rides the upstream frame header; a migration-buffered arrival drops it —
// the replay path is HTTP and the record would describe the wrong journey.
func (s *session) arrive(tenant string, point int, demands []int, frame []byte, traceID uint64) error {
	r := s.r
	r.mu.RLock()
	rt := r.routes[tenant]
	if rt == nil {
		r.mu.RUnlock()
		return fmt.Errorf("cluster: tenant %q has no route: %w", tenant, engine.ErrUnknownTenant)
	}
	if m := rt.mig; m != nil {
		// demands aliases the parser's scratch buffer — copy before it is
		// reused by the next frame.
		m.add(server.Arrival{Point: point, Demands: append([]int(nil), demands...)})
		r.mu.RUnlock()
		s.buffered++
		return nil
	}
	u, err := s.upstream(rt.node)
	if err == nil {
		if err = u.writeFrame(frame, traceID); err == nil {
			rt.count.Add(1)
		}
	}
	r.mu.RUnlock()
	return err
}

func (r *Router) acceptLoop(ln net.Listener) {
	defer r.loops.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		r.connMu.Lock()
		r.conns[conn] = struct{}{}
		r.connMu.Unlock()
		r.tcpConns.Add(1)
		go func() {
			defer r.tcpConns.Done()
			r.serveConn(conn)
			r.connMu.Lock()
			delete(r.conns, conn)
			r.connMu.Unlock()
		}()
	}
}

// serveConn proxies one framed op stream: arrives forward as raw frames to
// their owner nodes, creates place the tenant and run over HTTP, and at
// half-close the session collects every node's result frame into one
// aggregate result — the same contract a single node gives, so loadgen and
// clients cannot tell a router from a server.
func (r *Router) serveConn(conn net.Conn) {
	defer conn.Close()
	sess := &session{r: r, ups: make(map[int]*upstream)}
	br := bufio.NewReaderSize(conn, 1<<16)
	buf := make([]byte, 0, 4096)
	scratch := make([]int, 0, 64)
	var failure error
	for failure == nil {
		// About to block on the downstream socket: push everything already
		// routed to the wire so nodes never wait on frames parked in our
		// write buffers while the client thinks them sent.
		if br.Buffered() == 0 {
			sess.flushAll()
		}
		frame, wireID, err := server.ReadFrameTrace(br, buf)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				failure = err
			}
			break
		}
		if len(frame) == 0 {
			continue
		}
		// Trace context: an inbound id is propagated as-is; otherwise the
		// router samples so cluster-wide tracing works even when clients
		// send plain frames.
		id := wireID
		if id == 0 {
			id = r.tracer.Sample()
		}
		if tenant, point, demands, ok := server.FastArrive(frame, scratch[:0]); ok {
			if err := sess.arrive(tenant, point, demands, frame, id); err != nil {
				failure = err
				break
			}
			scratch = demands
			buf = frame[:0]
			continue
		}
		var op engine.Op
		if err := json.Unmarshal(frame, &op); err != nil {
			failure = fmt.Errorf("cluster: decoding op: %v", err)
			break
		}
		switch op.Op {
		case "create":
			failure = r.createTenant(op.Tenant, op.Universe, op.Distances, op.CostBySize)
		case "arrive":
			failure = sess.arrive(op.Tenant, op.Point, op.Demands, frame, id)
		default:
			failure = fmt.Errorf("cluster: unsupported op %q", op.Op)
		}
		buf = frame[:0]
	}
	res := sess.finish(failure)
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	server.WriteFrame(conn, payload) //nolint:errcheck // client may already be gone
}

// finish closes every upstream for writing, collects the nodes' result
// frames, and folds them into the single result the downstream client gets:
// arrivals summed across nodes plus the migration-buffered ones, the first
// failure's message and code carried through.
func (s *session) finish(failure error) server.TCPResult {
	res := server.TCPResult{OK: failure == nil, Arrivals: s.buffered}
	if failure != nil {
		res.Error = failure.Error()
		res.Code = server.ErrorCode(failure)
	}
	idxs := make([]int, 0, len(s.ups))
	for idx := range s.ups {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		u := s.ups[idx]
		s.r.unregisterUpstream(u)
		nodeAddr := s.r.nodes[idx].addr
		nr, err := u.collect()
		if err != nil {
			if res.OK {
				res.OK = false
				res.Error = fmt.Sprintf("node %s: %v", nodeAddr, err)
			}
			continue
		}
		res.Arrivals += nr.Arrivals
		if !nr.OK && res.OK {
			res.OK = false
			res.Error = fmt.Sprintf("node %s: %s", nodeAddr, nr.Error)
			res.Code = nr.Code
		}
	}
	return res
}

// collect flushes, half-closes, and reads the node's result frame.
func (u *upstream) collect() (server.TCPResult, error) {
	defer u.conn.Close()
	if err := u.flush(); err != nil {
		return server.TCPResult{}, err
	}
	if tc, ok := u.conn.(*net.TCPConn); ok {
		tc.CloseWrite() //nolint:errcheck // read below surfaces a dead conn
	}
	u.conn.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	frame, err := server.ReadFrame(u.conn, nil)
	if err != nil {
		return server.TCPResult{}, fmt.Errorf("reading result: %v", err)
	}
	var res server.TCPResult
	if err := json.Unmarshal(frame, &res); err != nil {
		return server.TCPResult{}, fmt.Errorf("decoding result: %v", err)
	}
	return res, nil
}
