package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
)

// place picks the node for a new tenant. Callers hold Router.mu (write).
// Only healthy nodes are candidates; both policies are deterministic given
// the same routing table and health state.
func (r *Router) place(tenant string) (int, error) {
	switch r.cfg.Placement {
	case "rendezvous":
		return r.placeRendezvous(tenant)
	default:
		return r.placeLeastLoad()
	}
}

// placeLeastLoad picks the healthy node hosting the fewest tenants (by the
// routing table, which includes in-flight reservations), lowest index on
// ties — the cluster analogue of the engine's PolicyLeastLoad shard
// pinning.
func (r *Router) placeLeastLoad() (int, error) {
	hosted := make([]int, len(r.nodes))
	for _, rt := range r.routes {
		hosted[rt.node]++
	}
	best, bestLoad := -1, 0
	for _, n := range r.nodes {
		if !n.isHealthy() {
			continue
		}
		if best == -1 || hosted[n.idx] < bestLoad {
			best, bestLoad = n.idx, hosted[n.idx]
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("cluster: no healthy node to place on")
	}
	return best, nil
}

// placeRendezvous picks the healthy node with the highest rendezvous hash
// of (tenant, node address): each tenant has its own preference order over
// nodes, so load spreads without a shared counter and placements stay
// stable when unrelated nodes join or leave.
func (r *Router) placeRendezvous(tenant string) (int, error) {
	best, bestScore := -1, uint64(0)
	for _, n := range r.nodes {
		if !n.isHealthy() {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(tenant))
		h.Write([]byte{0})
		h.Write([]byte(n.addr))
		if s := h.Sum64(); best == -1 || s > bestScore {
			best, bestScore = n.idx, s
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("cluster: no healthy node to place on")
	}
	return best, nil
}

// createTenant places a tenant and creates it on the chosen node. The route
// is reserved under the write lock before the node call so two concurrent
// creates cannot land the tenant on two nodes; a failed node create rolls
// the reservation back. As on a single node, clients must not race arrivals
// against their own create.
func (r *Router) createTenant(id string, universe int, distances [][]float64, costBySize []float64) error {
	r.mu.Lock()
	if _, ok := r.routes[id]; ok {
		r.mu.Unlock()
		return fmt.Errorf("cluster: tenant %q: %w", id, engine.ErrDuplicateTenant)
	}
	idx, err := r.place(id)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	r.routes[id] = &route{node: idx}
	r.mu.Unlock()

	body := map[string]interface{}{
		"universe":     universe,
		"distances":    distances,
		"cost_by_size": costBySize,
	}
	if err := r.postJSON(r.nodes[idx].base+"/v1/tenants/"+id, body, nil); err != nil {
		r.mu.Lock()
		delete(r.routes, id)
		r.mu.Unlock()
		return fmt.Errorf("cluster: creating %q on node %s: %v", id, r.nodes[idx].addr, err)
	}
	r.logger.Info("tenant placed", "tenant", id, "node", r.nodes[idx].addr)
	return nil
}

// forwardArrivals routes a batch of arrivals for one tenant: buffered into
// the live migration when one is in flight, otherwise posted to the owner
// node. The node call runs under RLock — that is the quiesce barrier, not
// an accident (see the package doc) — and the route ledger advances by
// exactly the number of arrivals the node admitted. traceID (0 = untraced)
// is forwarded in the X-Omflp-Trace header so the worker records the
// batch's first arrival under it.
func (r *Router) forwardArrivals(id string, batch []server.Arrival, traceID uint64) (int, error) {
	r.mu.RLock()
	rt := r.routes[id]
	if rt == nil {
		r.mu.RUnlock()
		return 0, fmt.Errorf("cluster: tenant %q has no route: %w", id, engine.ErrUnknownTenant)
	}
	if m := rt.mig; m != nil {
		m.add(batch...)
		r.mu.RUnlock()
		return len(batch), nil
	}
	node := r.nodes[rt.node]
	accepted, err := r.postArrivalsTraced(node, id, batch, traceID)
	rt.count.Add(int64(accepted))
	r.mu.RUnlock()
	return accepted, err
}

// postArrivals posts one arrive batch to a node and reports how many
// arrivals the node admitted — decoded from the body even on error
// statuses, because a batch that fails at element i has irrevocably
// admitted the i before it and the ledger must say so. Only a transport
// failure leaves the count unknowable (reported as 0); the ledger then
// undercounts and a later migration of the tenant times out in quiesce
// rather than silently losing the discrepancy.
func (r *Router) postArrivals(n *node, id string, batch []server.Arrival) (int, error) {
	return r.postArrivalsTraced(n, id, batch, 0)
}

func (r *Router) postArrivalsTraced(n *node, id string, batch []server.Arrival, traceID uint64) (int, error) {
	body, err := json.Marshal(map[string]interface{}{"arrivals": batch})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequest("POST", n.base+"/v1/tenants/"+id+"/arrive", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != 0 {
		req.Header.Set(server.TraceHeader, obs.TraceIDString(traceID))
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("cluster: forwarding to node %s: %v", n.addr, err)
	}
	defer resp.Body.Close()
	var out struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil && resp.StatusCode/100 == 2 {
		return 0, fmt.Errorf("cluster: decoding node %s arrive response: %v", n.addr, derr)
	}
	if resp.StatusCode/100 != 2 {
		err := fmt.Errorf("cluster: node %s: %s: %s", n.addr, resp.Status, out.Error)
		if resp.StatusCode == http.StatusNotFound {
			// The node does not host the tenant the routing table says it
			// does (a crash lost it, or a migration raced): surface the
			// sentinel so callers can tell a stale route from a bad request.
			err = fmt.Errorf("cluster: node %s: %s: %w", n.addr, out.Error, engine.ErrUnknownTenant)
		}
		return out.Accepted, err
	}
	return out.Accepted, nil
}
