package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/server"
)

// place picks the node for a new tenant (or, with exclude >= 0, for its
// follower replica — the owner's node is never a candidate). Callers hold
// Router.mu (write). Only healthy nodes are candidates; both policies are
// deterministic given the same routing table and health state.
func (r *Router) place(tenant string, exclude int) (int, error) {
	switch r.cfg.Placement {
	case "rendezvous":
		return r.placeRendezvous(tenant, exclude)
	default:
		return r.placeLeastLoad(exclude)
	}
}

// placeLeastLoad picks the healthy node hosting the fewest tenants (by the
// routing table, which includes in-flight reservations), lowest index on
// ties — the cluster analogue of the engine's PolicyLeastLoad shard
// pinning. Follower placements count toward load too: a replica serves
// every arrival its tenant does.
func (r *Router) placeLeastLoad(exclude int) (int, error) {
	hosted := make([]int, len(r.nodes))
	for _, rt := range r.routes {
		hosted[rt.node]++
		if rt.follower >= 0 {
			hosted[rt.follower]++
		}
	}
	best, bestLoad := -1, 0
	for _, n := range r.nodes {
		if n.idx == exclude || !n.isHealthy() {
			continue
		}
		if best == -1 || hosted[n.idx] < bestLoad {
			best, bestLoad = n.idx, hosted[n.idx]
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("cluster: no healthy node to place on")
	}
	return best, nil
}

// placeRendezvous picks the healthy node with the highest rendezvous hash
// of (tenant, node address): each tenant has its own preference order over
// nodes, so load spreads without a shared counter and placements stay
// stable when unrelated nodes join or leave. With exclude >= 0 the
// excluded node is skipped, so a tenant's follower lands on its
// second-preference node.
func (r *Router) placeRendezvous(tenant string, exclude int) (int, error) {
	best, bestScore := -1, uint64(0)
	for _, n := range r.nodes {
		if n.idx == exclude || !n.isHealthy() {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(tenant))
		h.Write([]byte{0})
		h.Write([]byte(n.addr))
		if s := h.Sum64(); best == -1 || s > bestScore {
			best, bestScore = n.idx, s
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("cluster: no healthy node to place on")
	}
	return best, nil
}

// createTenant places a tenant and creates it on the chosen node — and,
// with replication on, on a follower node as well (both instances admit
// the same arrival stream, so their snapshots are byte-identical). The
// route is reserved under the write lock before the node calls so two
// concurrent creates cannot land the tenant on two nodes; a failed owner
// create rolls the reservation back, while a failed follower create only
// degrades the tenant to unreplicated. The placement is journaled to the
// route log. As on a single node, clients must not race arrivals against
// their own create.
func (r *Router) createTenant(id string, universe int, distances [][]float64, costBySize []float64) error {
	r.mu.Lock()
	if _, ok := r.routes[id]; ok {
		r.mu.Unlock()
		return fmt.Errorf("cluster: tenant %q: %w", id, engine.ErrDuplicateTenant)
	}
	idx, err := r.place(id, -1)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	fidx := -1
	if r.cfg.Replicate {
		if f, ferr := r.place(id, idx); ferr != nil {
			r.logger.Warn("no follower placement, tenant unreplicated", "tenant", id, "err", ferr)
		} else {
			fidx = f
		}
	}
	rt := &route{node: idx, follower: fidx, synced: true}
	r.routes[id] = rt
	r.mu.Unlock()

	body := map[string]interface{}{
		"universe":     universe,
		"distances":    distances,
		"cost_by_size": costBySize,
	}
	if err := r.postJSON(r.nodes[idx].base+"/v1/tenants/"+id, body, nil); err != nil {
		r.mu.Lock()
		delete(r.routes, id)
		r.mu.Unlock()
		return fmt.Errorf("cluster: creating %q on node %s: %v", id, r.nodes[idx].addr, err)
	}
	if fidx >= 0 {
		if err := r.postJSON(r.nodes[fidx].base+"/v1/tenants/"+id, body, nil); err != nil {
			r.logger.Warn("follower create failed, tenant unreplicated",
				"tenant", id, "follower", r.nodes[fidx].addr, "err", err)
			r.replDegrades.Add(1)
			r.mu.Lock()
			rt.follower = -1
			r.mu.Unlock()
			fidx = -1
		}
	}
	r.rlog.append(routeEvent{Op: "place", Tenant: id, Node: r.nodes[idx].addr, Follower: r.nodeAddr(fidx)})
	r.logger.Info("tenant placed", "tenant", id, "node", r.nodes[idx].addr, "follower", r.nodeAddr(fidx))
	return nil
}

// forwardArrivals routes a batch of arrivals for one tenant: buffered into
// the live migration when one is in flight, otherwise posted to the owner
// node (and, for a replicated tenant, to its follower — an arrival is
// accounted only after both admit it). The node calls run under RLock —
// that is the quiesce barrier, not an accident (see the package doc) — and
// the route ledger advances by exactly the number of arrivals the owner
// admitted. traceID (0 = untraced) is forwarded in the X-Omflp-Trace header
// so the worker records the batch's first arrival under it.
func (r *Router) forwardArrivals(id string, batch []server.Arrival, traceID uint64) (int, error) {
	acc, _, err := r.forwardArrivalsAt(id, batch, traceID, -1)
	return acc, err
}

// forwardArrivalsAt is forwardArrivals with an optional client-supplied
// idempotency key: clientStart >= 0 names the stream position of batch[0]
// as the client counts it. The router trims the prefix its ledger already
// accounts for (the footprint of a client retry after a partial forward),
// refuses gaps, and forwards the remainder stamped with its own key, so
// both client-side and router-side retries are exactly-once. It returns
// (accounted, deduped): accounted counts every batch item the cluster now
// accounts for (admitted or recognized as already admitted), deduped the
// already-admitted prefix.
//
// Each node call runs under the unified retry policy. Retries are safe
// because the key rides along: a batch resent after a transport failure is
// trimmed by the worker's admitted counter. This also self-heals the
// ledger-undercount case — a transport failure that hid a partial
// admission is reconciled on the next keyed forward, where the worker
// reports the overlap as deduped instead of double-serving it.
func (r *Router) forwardArrivalsAt(id string, batch []server.Arrival, traceID uint64, clientStart int64) (int, int, error) {
	if err := r.ensureSynced(id); err != nil {
		return 0, 0, err
	}
	r.mu.RLock()
	rt := r.routes[id]
	if rt == nil {
		r.mu.RUnlock()
		return 0, 0, fmt.Errorf("cluster: tenant %q has no route: %w", id, engine.ErrUnknownTenant)
	}
	deduped := 0
	if clientStart >= 0 {
		pos := rt.count.Load()
		if m := rt.mig; m != nil {
			pos += int64(m.buffered())
		}
		if clientStart > pos {
			r.mu.RUnlock()
			return 0, 0, fmt.Errorf("cluster: tenant %q: batch starts at position %d, cluster accounts %d: %w",
				id, clientStart, pos, engine.ErrArrivalGap)
		}
		skip := int(pos - clientStart)
		if skip >= len(batch) {
			r.mu.RUnlock()
			return len(batch), len(batch), nil
		}
		batch = batch[skip:]
		deduped = skip
	}
	if m := rt.mig; m != nil {
		m.add(batch...)
		r.mu.RUnlock()
		return deduped + len(batch), deduped, nil
	}
	owner := r.nodes[rt.node]
	start := rt.count.Load()
	var accepted int
	err := defaultRetry.do(func() error {
		var aerr error
		accepted, _, aerr = r.postArrivalsIdem(owner, id, batch, traceID, start)
		return aerr
	}, func(error) { r.retries.Add(1) })
	// Even a failed batch advances the ledger by what the owner reported
	// admitted: those arrivals happened and quiesce must account for them.
	rt.count.Add(int64(accepted))
	fidx := rt.follower
	var ferr error
	if err == nil && fidx >= 0 {
		ferr = defaultRetry.do(func() error {
			_, _, e := r.postArrivalsIdem(r.nodes[fidx], id, batch, 0, start)
			return e
		}, func(error) { r.retries.Add(1) })
	}
	r.mu.RUnlock()
	if ferr != nil {
		// The follower missed a batch the owner admitted: its replica has
		// diverged from the arrival stream and can no longer be promoted.
		// Degrade now; the health loop reseeds a fresh follower.
		r.degradeFollower(id, fidx, ferr)
	}
	return deduped + accepted, deduped, err
}

// ensureSynced reconciles a route whose ledger was restored from the route
// log (and so may trail the owner's admitted count by up to one health
// tick) before the first keyed forward uses it. Synced routes return
// immediately; the slow path runs once per restored route.
func (r *Router) ensureSynced(id string) error {
	r.mu.RLock()
	rt := r.routes[id]
	synced := rt == nil || rt.synced
	r.mu.RUnlock()
	if synced {
		return nil
	}
	return r.resyncRoute(id)
}

// resyncRoute asks the owner for the tenant's admitted count and adopts it
// as the ledger. It runs under the write lock — the quiesce barrier
// guarantees no forward is concurrently advancing the count it overwrites.
// The owner call happens before the lock is taken so an unreachable owner
// stalls only this tenant's forwards, not the routing table.
func (r *Router) resyncRoute(id string) error {
	r.mu.RLock()
	rt := r.routes[id]
	if rt == nil || rt.synced {
		r.mu.RUnlock()
		return nil
	}
	owner := r.nodes[rt.node]
	r.mu.RUnlock()

	var doc struct {
		Served   int64 `json:"served"`
		Admitted int64 `json:"admitted"`
	}
	err := defaultRetry.do(func() error {
		if gerr := r.getJSON(owner.base+"/v1/tenants/"+id+"/served", &doc); gerr != nil {
			return &unavailableError{gerr}
		}
		return nil
	}, func(error) { r.retries.Add(1) })
	if err != nil {
		return fmt.Errorf("cluster: re-syncing restored route for %q against %s: %w", id, owner.addr, err)
	}

	r.mu.Lock()
	if rt := r.routes[id]; rt != nil && !rt.synced {
		old := rt.count.Load()
		rt.count.Store(doc.Admitted)
		rt.synced = true
		if old != doc.Admitted {
			r.logger.Info("restored ledger re-synced",
				"tenant", id, "restored", old, "admitted", doc.Admitted)
		}
	}
	r.mu.Unlock()
	return nil
}

// postArrivals posts one arrive batch to a node and reports how many
// arrivals the node admitted — decoded from the body even on error
// statuses, because a batch that fails at element i has irrevocably
// admitted the i before it and the ledger must say so. Only a transport
// failure leaves the count unknowable (reported as 0); the ledger then
// undercounts and a later migration of the tenant times out in quiesce
// rather than silently losing the discrepancy.
func (r *Router) postArrivals(n *node, id string, batch []server.Arrival) (int, error) {
	acc, _, err := r.postArrivalsIdem(n, id, batch, 0, -1)
	return acc, err
}

// postArrivalsIdem posts one arrive batch. start >= 0 stamps the
// X-Omflp-Idem-Start header (the stream position of batch[0] by the
// router's ledger): the worker then trims any already-admitted prefix, so
// resending the same batch is exactly-once. Returns the node's accounted
// count (admitted plus deduped) and the deduped prefix length. A 5xx or
// transport failure is wrapped as retry-safe; application refusals (404,
// 409) are final.
func (r *Router) postArrivalsIdem(n *node, id string, batch []server.Arrival, traceID uint64, start int64) (int, int, error) {
	body, err := json.Marshal(map[string]interface{}{"arrivals": batch})
	if err != nil {
		return 0, 0, err
	}
	req, err := http.NewRequest("POST", n.base+"/v1/tenants/"+id+"/arrive", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != 0 {
		req.Header.Set(server.TraceHeader, obs.TraceIDString(traceID))
	}
	if start >= 0 {
		req.Header.Set(server.IdemHeader, strconv.FormatInt(start, 10))
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, 0, &unavailableError{fmt.Errorf("cluster: forwarding to node %s: %v", n.addr, err)}
	}
	defer resp.Body.Close()
	var out struct {
		Accepted int    `json:"accepted"`
		Deduped  int    `json:"deduped"`
		Error    string `json:"error"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&out); derr != nil && resp.StatusCode/100 == 2 {
		return 0, 0, fmt.Errorf("cluster: decoding node %s arrive response: %v", n.addr, derr)
	}
	if resp.StatusCode/100 != 2 {
		err := fmt.Errorf("cluster: node %s: %s: %s", n.addr, resp.Status, out.Error)
		switch {
		case resp.StatusCode == http.StatusNotFound:
			// The node does not host the tenant the routing table says it
			// does (a crash lost it, or a migration raced): surface the
			// sentinel so callers can tell a stale route from a bad request.
			err = fmt.Errorf("cluster: node %s: %s: %w", n.addr, out.Error, engine.ErrUnknownTenant)
		case resp.StatusCode/100 == 5:
			// The node is up but refusing (shutting down, overloaded):
			// retry-safe under the idempotency key.
			err = &unavailableError{err}
		}
		return out.Accepted, out.Deduped, err
	}
	return out.Accepted, out.Deduped, nil
}
