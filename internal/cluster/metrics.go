package cluster

import (
	"repro/internal/server"
)

// NodeReport is one node's slice of a cluster metrics scrape.
type NodeReport struct {
	Node    string `json:"node"`
	Healthy bool   `json:"healthy"`
	// Stale marks a duplicated scrape: the node's (Seq, WallUnixNano)
	// pair is exactly the one the previous cluster scrape saw, so the
	// numbers describe a rate window already accounted for (a wedged
	// node, a proxy replaying a cached body) and its window rates are
	// excluded from the totals. A restarted node resets Seq but carries a
	// fresh wall stamp, so recovery is never mistaken for staleness.
	Stale bool `json:"stale,omitempty"`
	// Routed counts tenants the routing table places on this node — it
	// can disagree with Metrics.Tenants while a migration is in flight or
	// after a node restart lost un-checkpointed creates.
	Routed  int             `json:"routed"`
	Error   string          `json:"error,omitempty"`
	Metrics *server.Metrics `json:"metrics,omitempty"`
}

// Metrics is the cluster-wide view GET /v1/metrics serves from the router:
// per-node reports plus totals that are safe to aggregate (window rates
// from fresh reports only — see NodeReport.Stale).
type Metrics struct {
	Nodes        int `json:"nodes"`
	HealthyNodes int `json:"healthy_nodes"`
	// Tenants is the routing-table size (the cluster's view, immune to
	// double counting while a tenant moves between nodes).
	Tenants int `json:"tenants"`
	// Served sums the route ledgers — arrivals admitted through the
	// cluster per the router's own accounting. Summing the nodes' served
	// counts instead would double-count migrated tenants: a source node's
	// histograms keep the history of tenants extracted from it.
	Served int64 `json:"served"`
	// WindowArrivalsPerSec sums the fresh (non-stale) nodes' windowed
	// serving rates.
	WindowArrivalsPerSec float64 `json:"window_arrivals_per_sec"`
	// Migrations counts completed migrations since the router started.
	Migrations int64 `json:"migrations"`
	// ReplicatedTenants counts routes that currently have a live follower
	// replica; Replicate-mode clusters want this equal to Tenants.
	ReplicatedTenants int `json:"replicated_tenants"`
	// Retries counts forwarding attempts repeated under the retry policy.
	Retries int64 `json:"retries"`
	// Failovers counts node-down events that triggered follower promotion;
	// Promotions counts the tenants promoted across all of them.
	Failovers  int64 `json:"failovers"`
	Promotions int64 `json:"promotions"`
	// ReplicationDegrades counts followers dropped after a dual-write or
	// reseed failure (each later healed by the health loop's reseeder).
	ReplicationDegrades int64 `json:"replication_degrades"`
	// Faults reports injected-fault counts by kind when a fault injector is
	// configured (absent otherwise).
	Faults  map[string]int64 `json:"faults,omitempty"`
	PerNode []NodeReport     `json:"per_node"`
}

// Metrics scrapes every node and merges the reports. Each node's Seq is
// compared against the previous cluster scrape: an unchanged Seq flags the
// report stale rather than double-counting its rate window.
func (r *Router) Metrics() Metrics {
	routed := make(map[int]int)
	var served int64
	replicated := 0
	r.mu.RLock()
	tenants := len(r.routes)
	for _, rt := range r.routes {
		routed[rt.node]++
		served += rt.count.Load()
		if rt.follower >= 0 {
			replicated++
		}
	}
	r.mu.RUnlock()

	cm := Metrics{
		Nodes:               len(r.nodes),
		Tenants:             tenants,
		Served:              served,
		Migrations:          r.migrations.Load(),
		ReplicatedTenants:   replicated,
		Retries:             r.retries.Load(),
		Failovers:           r.failovers.Load(),
		Promotions:          r.promotions.Load(),
		ReplicationDegrades: r.replDegrades.Load(),
		Faults:              r.cfg.Faults.Counts(),
		PerNode:             make([]NodeReport, 0, len(r.nodes)),
	}
	for _, n := range r.nodes {
		rep := NodeReport{Node: n.addr, Routed: routed[n.idx]}
		if !n.isHealthy() {
			rep.Error = "unreachable"
			cm.PerNode = append(cm.PerNode, rep)
			continue
		}
		var m server.Metrics
		if err := r.getJSON(n.base+"/v1/metrics", &m); err != nil {
			rep.Error = err.Error()
			cm.PerNode = append(cm.PerNode, rep)
			continue
		}
		rep.Healthy = true
		rep.Metrics = &m
		n.mu.Lock()
		rep.Stale = n.lastSeq != 0 && m.Seq == n.lastSeq && m.WallUnixNano == n.lastWall
		n.lastSeq, n.lastWall = m.Seq, m.WallUnixNano
		n.mu.Unlock()
		cm.HealthyNodes++
		if !rep.Stale {
			cm.WindowArrivalsPerSec += m.WindowArrivalsPerSec
		}
		cm.PerNode = append(cm.PerNode, rep)
	}
	return cm
}
