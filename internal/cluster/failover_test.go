package cluster

// Tests for the hardening layers: the durable route log, router restart,
// standby failover, tenant replication, and deterministic fault injection.
// Every recovery path closes the loop against the same golden the rest of
// the suite uses — the single-node /v1/snapshots artifact for the identical
// workload — so "survived the fault" always means "byte-identical state",
// never just "did not crash".

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
)

// TestRouteLogRoundTrip: the folded state of a route log survives a clean
// close/reopen cycle (base snapshot path) with sequence numbers intact.
func TestRouteLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rl, err := openRouteLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	rl.append(routeEvent{Op: "place", Tenant: "a", Node: "n1:1", Follower: "n2:1"})
	rl.append(routeEvent{Op: "place", Tenant: "b", Node: "n2:1"})
	rl.append(routeEvent{Op: "counts", Counts: map[string]int64{"a": 12, "b": 7}})
	rl.append(routeEvent{Op: "flip", Tenant: "b", Node: "n1:1", Count: 9})
	rl.append(routeEvent{Op: "promote", Tenant: "a", Node: "n2:1", Count: 12, Epoch: 1})
	rl.append(routeEvent{Op: "place", Tenant: "c", Node: "n1:1"})
	rl.append(routeEvent{Op: "drop", Tenant: "c"})
	want, seq := rl.snapshot()
	rl.close()

	re, err := openRouteLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.close()
	got, gotSeq := re.snapshot()
	if gotSeq != seq {
		t.Errorf("reopened log at seq %d, want %d", gotSeq, seq)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reopened state %+v, want %+v", got, want)
	}
	if re.restored != len(want) {
		t.Errorf("restored %d routes, want %d", re.restored, len(want))
	}
}

// TestRouteLogTornJournal: a torn final journal line — the expected kill -9
// artifact — stops replay cleanly instead of corrupting the restore.
func TestRouteLogTornJournal(t *testing.T) {
	dir := t.TempDir()
	rl, err := openRouteLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	rl.append(routeEvent{Op: "place", Tenant: "a", Node: "n1:1"})
	rl.append(routeEvent{Op: "counts", Counts: map[string]int64{"a": 5}})
	want, seq := rl.snapshot()
	// No close: simulate a kill -9 that tore the last line mid-write.
	f, err := os.OpenFile(filepath.Join(dir, routesJournalFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"place","tenant":"torn","node":"nx`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := openRouteLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.close()
	got, gotSeq := re.snapshot()
	if gotSeq != seq {
		t.Errorf("replay past the torn line: seq %d, want %d", gotSeq, seq)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored state %+v, want %+v", got, want)
	}
}

// TestRouterRestartRestoresRoutes: a router with a StateDir restores its
// routing table and ledgers from its own checkpoint — O(1), no node
// snapshot rescans — and serves the remaining workload to byte identity.
func TestRouterRestartRestoresRoutes(t *testing.T) {
	const tenants, arrivals, cut = 3, 60, 36
	want := referenceArtifact(t, 31, tenants, arrivals)

	w1 := startWorker(t, 31, "")
	w2 := startWorker(t, 31, "")
	nodes := []string{w1.HTTPAddr(), w2.HTTPAddr()}
	dir := t.TempDir()

	r1 := startRouter(t, Config{Nodes: nodes, StateDir: dir})
	base := "http://" + r1.HTTPAddr()
	for i := 0; i < tenants; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i), testCreate, http.StatusCreated)
	}
	for i := 0; i < cut; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i%tenants)+"/arrive", testArrival(i), http.StatusOK)
	}
	if err := r1.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	r2 := startRouter(t, Config{Nodes: nodes, StateDir: dir})
	base = "http://" + r2.HTTPAddr()
	if r2.routesRestored != tenants {
		t.Fatalf("restored %d routes from the route log, want %d", r2.routesRestored, tenants)
	}
	var hz struct {
		Role           string `json:"role"`
		RoutesRestored int    `json:"routes_restored"`
	}
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/healthz", nil, http.StatusOK), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Role != "router" || hz.RoutesRestored != tenants {
		t.Errorf("healthz role=%s routes_restored=%d, want router/%d", hz.Role, hz.RoutesRestored, tenants)
	}
	// A clean shutdown folded the exact ledgers into the base snapshot.
	r2.mu.RLock()
	var restored int64
	for _, rt := range r2.routes {
		restored += rt.count.Load()
	}
	r2.mu.RUnlock()
	if restored != cut {
		t.Errorf("restored ledgers sum to %d, want %d", restored, cut)
	}

	for i := cut; i < arrivals; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i%tenants)+"/arrive", testArrival(i), http.StatusOK)
	}
	got := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("snapshots after router restart differ from the single-node artifact")
	}
}

// TestStandbyPromoteByteIdentity: a standby router follows the primary's
// route journal, refuses routing verbs while passive, promotes itself when
// the primary dies, and serves the rest of the workload to byte identity.
func TestStandbyPromoteByteIdentity(t *testing.T) {
	const tenants, arrivals, cut = 3, 60, 30
	want := referenceArtifact(t, 41, tenants, arrivals)

	w1 := startWorker(t, 41, "")
	w2 := startWorker(t, 41, "")
	nodes := []string{w1.HTTPAddr(), w2.HTTPAddr()}

	primary := startRouter(t, Config{Nodes: nodes, TCPAddr: "127.0.0.1:0", StateDir: t.TempDir()})
	pbase := "http://" + primary.HTTPAddr()
	for i := 0; i < tenants; i++ {
		httpJSON(t, "POST", pbase+"/v1/tenants/"+tenantName(i), testCreate, http.StatusCreated)
	}
	for i := 0; i < cut; i++ {
		httpJSON(t, "POST", pbase+"/v1/tenants/"+tenantName(i%tenants)+"/arrive", testArrival(i), http.StatusOK)
	}

	standby := startRouter(t, Config{
		Nodes: nodes, StandbyOf: primary.TCPAddr(), FailoverAfter: 1, StateDir: t.TempDir(),
	})
	sbase := "http://" + standby.HTTPAddr()

	// Passive standbys refuse routing verbs with the rotation signal.
	httpJSON(t, "GET", sbase+"/v1/snapshots", nil, http.StatusServiceUnavailable)

	// The follow stream must deliver the full table and, within a health
	// tick, the exact ledgers.
	waitFor(t, "standby to follow the route table", func() bool {
		state, _ := standby.rlog.snapshot()
		if len(state) != tenants {
			return false
		}
		var sum int64
		for _, rec := range state {
			sum += rec.Count
		}
		return sum == cut
	})

	if err := primary.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "standby promotion", func() bool { return !standby.standby.Load() })

	var hz struct {
		Role string `json:"role"`
	}
	if err := json.Unmarshal(httpJSON(t, "GET", sbase+"/healthz", nil, http.StatusOK), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Role != "router" {
		t.Errorf("promoted standby reports role %q, want router", hz.Role)
	}

	for i := cut; i < arrivals; i++ {
		httpJSON(t, "POST", sbase+"/v1/tenants/"+tenantName(i%tenants)+"/arrive", testArrival(i), http.StatusOK)
	}
	got := httpJSON(t, "GET", sbase+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("snapshots after standby takeover differ from the single-node artifact")
	}
}

// TestReplicationWorkerLoss: with Replicate on, every acknowledged arrival
// survives the owner node's death — the followers promote and the final
// artifact is byte-identical to the fault-free single-node run.
func TestReplicationWorkerLoss(t *testing.T) {
	const tenants, arrivals, cut = 3, 60, 30
	want := referenceArtifact(t, 51, tenants, arrivals)

	w1 := startWorker(t, 51, "")
	w2 := startWorker(t, 51, "")
	r := startRouter(t, Config{Nodes: []string{w1.HTTPAddr(), w2.HTTPAddr()}, Replicate: true})
	base := "http://" + r.HTTPAddr()

	for i := 0; i < tenants; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i), testCreate, http.StatusCreated)
	}
	var m Metrics
	if err := json.Unmarshal(httpJSON(t, "GET", base+"/v1/metrics", nil, http.StatusOK), &m); err != nil {
		t.Fatal(err)
	}
	if m.ReplicatedTenants != tenants {
		t.Fatalf("%d of %d tenants replicated", m.ReplicatedTenants, tenants)
	}
	// Least-load placement with two nodes puts every owner on node 0 (ties
	// go to the lowest index) and every follower on node 1 — so killing
	// node 0 exercises promotion for the whole table.
	r.mu.RLock()
	for id, rt := range r.routes {
		if rt.node != 0 || rt.follower != 1 {
			t.Fatalf("route %s: owner %d follower %d, want 0/1", id, rt.node, rt.follower)
		}
	}
	r.mu.RUnlock()

	for i := 0; i < cut; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i%tenants)+"/arrive", testArrival(i), http.StatusOK)
	}

	// Kill the owner node. Every pre-kill arrival was acknowledged only
	// after both replicas admitted it, so zero acknowledged loss is exactly
	// byte identity of the survivor's state.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower promotion", func() bool { return r.promotions.Load() == tenants })

	r.mu.RLock()
	for id, rt := range r.routes {
		if rt.node != 1 || rt.epoch != 1 {
			t.Errorf("route %s after failover: owner %d epoch %d, want 1/1", id, rt.node, rt.epoch)
		}
		if rt.follower != -1 {
			t.Errorf("route %s kept follower %d with one node left", id, rt.follower)
		}
	}
	r.mu.RUnlock()
	if r.failovers.Load() == 0 {
		t.Error("failover counter never advanced")
	}

	for i := cut; i < arrivals; i++ {
		httpJSON(t, "POST", base+"/v1/tenants/"+tenantName(i%tenants)+"/arrive", testArrival(i), http.StatusOK)
	}
	got := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Error("snapshots after worker loss differ from the single-node artifact")
	}
}

// TestMigrationFaultInjection drives the migration coordinator into every
// injected failure phase and asserts the documented outcome: extract and
// inject faults abort cleanly back to the source, a flip fault lands the
// route on the target anyway (state lives there), and an inject+reinject
// double fault drops the route rather than leaving it split. In every
// surviving case the tenant's final snapshot is byte-identical — no
// arrival is lost or double-served by a faulted migration.
func TestMigrationFaultInjection(t *testing.T) {
	const arrivals, cut = 40, 20
	cases := []struct {
		name    string
		fail    map[string]bool
		flipped bool // route ends on the target despite the error
		dropped bool // route is gone (tenant needs manual restore)
	}{
		{name: "extract-fault-aborts", fail: map[string]bool{"extract": true}},
		{name: "inject-fault-aborts", fail: map[string]bool{"inject": true}},
		{name: "flip-fault-flips-anyway", fail: map[string]bool{"flip": true}, flipped: true},
		{name: "double-fault-drops-route", fail: map[string]bool{"inject": true, "reinject": true}, dropped: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := referenceArtifact(t, 61, 1, arrivals)
			w1 := startWorker(t, 61, "")
			w2 := startWorker(t, 61, "")
			r := startRouter(t, Config{Nodes: []string{w1.HTTPAddr(), w2.HTTPAddr()}})
			base := "http://" + r.HTTPAddr()
			id := tenantName(0)
			httpJSON(t, "POST", base+"/v1/tenants/"+id, testCreate, http.StatusCreated)
			for i := 0; i < cut; i++ {
				httpJSON(t, "POST", base+"/v1/tenants/"+id+"/arrive", testArrival(i), http.StatusOK)
			}

			r.migFault = func(phase string) error {
				if tc.fail[phase] {
					return fmt.Errorf("injected %s fault", phase)
				}
				return nil
			}
			if _, err := r.Migrate(id, w2.HTTPAddr()); err == nil {
				t.Fatal("migration with an injected fault reported success")
			}
			r.migFault = nil
			if n := r.migrations.Load(); n != 0 {
				t.Errorf("failed migration counted as complete (%d)", n)
			}

			if tc.dropped {
				// The tenant's state was lost mid-move; the route must be
				// gone so requests fail fast instead of splitting.
				httpJSON(t, "POST", base+"/v1/tenants/"+id+"/arrive", testArrival(cut), http.StatusMisdirectedRequest)
				return
			}

			r.mu.RLock()
			rt := r.routes[id]
			var node int
			var count int64
			migrating := false
			if rt != nil {
				node, count, migrating = rt.node, rt.count.Load(), rt.mig != nil
			}
			r.mu.RUnlock()
			if rt == nil {
				t.Fatal("route vanished after a recoverable migration fault")
			}
			if migrating {
				t.Fatal("route left in the migrating state")
			}
			if count != cut {
				t.Errorf("ledger reads %d after the faulted migration, want %d", count, cut)
			}
			wantNode := 0
			if tc.flipped {
				wantNode = 1
			}
			if node != wantNode {
				t.Errorf("route on node %d, want %d", node, wantNode)
			}

			for i := cut; i < arrivals; i++ {
				httpJSON(t, "POST", base+"/v1/tenants/"+id+"/arrive", testArrival(i), http.StatusOK)
			}
			got := httpJSON(t, "GET", base+"/v1/snapshots", nil, http.StatusOK)
			if !bytes.Equal(got, want) {
				t.Error("snapshots after the faulted migration differ from the single-node artifact")
			}
		})
	}
}

// tryJSON is httpJSON without the fatal status check — fault-injection
// tests retry around injected transport failures instead of dying on them.
// The client→router hop carries no injected faults, so a transport error
// there is still fatal.
func tryJSON(t *testing.T, method, url string, body interface{}, hdr map[string]string) ([]byte, int) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

// TestInjectedFaultsNoDoubleServe runs a full workload through a router
// whose upstream transport injects deterministic dial failures and stalls.
// Arrivals carry client-side idempotency keys and are retried until
// acknowledged; the test asserts the end state the hardening promises —
// every acknowledged arrival admitted exactly once (ledger == workload,
// artifact byte-identical) no matter how many forwards the injector killed.
func TestInjectedFaultsNoDoubleServe(t *testing.T) {
	const tenants, arrivals = 3, 90
	want := referenceArtifact(t, 71, tenants, arrivals)

	inj, err := faults.Parse("seed=7,dial-fail=1/25,stall=1/20:1ms")
	if err != nil {
		t.Fatal(err)
	}
	w1 := startWorker(t, 71, "")
	w2 := startWorker(t, 71, "")
	// DownAfter rides out injected probe-path faults without failover.
	r := startRouter(t, Config{Nodes: []string{w1.HTTPAddr(), w2.HTTPAddr()}, DownAfter: 5, Faults: inj})
	base := "http://" + r.HTTPAddr()

	// Creates are not retried inside the router (a failed create rolls its
	// reservation back), so retry here; 409 means an earlier attempt won.
	for i := 0; i < tenants; i++ {
		url := base + "/v1/tenants/" + tenantName(i)
		waitFor(t, "create "+tenantName(i), func() bool {
			_, status := tryJSON(t, "POST", url, testCreate, nil)
			return status == http.StatusCreated || status == http.StatusConflict
		})
	}

	// Keyed arrivals: every post names its stream position, so a retried
	// batch is trimmed by the ledger, never double-served.
	pos := make(map[string]int64)
	for i := 0; i < arrivals; i++ {
		id := tenantName(i % tenants)
		sent := false
		for attempt := 0; attempt < 50 && !sent; attempt++ {
			_, status := tryJSON(t, "POST", base+"/v1/tenants/"+id+"/arrive", testArrival(i),
				map[string]string{server.IdemHeader: strconv.FormatInt(pos[id], 10)})
			if status == http.StatusOK {
				sent = true
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !sent {
			t.Fatalf("arrival %d for %s not admitted after retries", i, id)
		}
		pos[id]++
	}

	m := r.Metrics()
	if m.Served != arrivals {
		t.Errorf("route ledgers account %d arrivals, want exactly %d", m.Served, arrivals)
	}
	var fired int64
	for _, n := range m.Faults {
		fired += n
	}
	if fired == 0 {
		t.Error("fault injector never fired — the workload did not exercise the retry path")
	}

	// The artifact fetch itself crosses the faulty transport; retry it too.
	var got []byte
	waitFor(t, "snapshots through the faulty transport", func() bool {
		b, status := tryJSON(t, "GET", base+"/v1/snapshots", nil, nil)
		if status != http.StatusOK {
			return false
		}
		got = b
		return true
	})
	if !bytes.Equal(got, want) {
		t.Error("snapshots under fault injection differ from the single-node artifact")
	}
}
