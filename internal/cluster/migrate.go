package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/server"
)

// migration buffers arrivals for a tenant whose route is mid-move. Sessions
// append under Router.mu.RLock + buf's own lock; the coordinator drains
// under buf's lock alone and flips the route once the buffer is observed
// empty under the write lock (at which point no appender can be in flight).
type migration struct {
	mu  sync.Mutex
	buf []server.Arrival
}

func (m *migration) add(batch ...server.Arrival) {
	m.mu.Lock()
	m.buf = append(m.buf, batch...)
	m.mu.Unlock()
}

func (m *migration) take() []server.Arrival {
	m.mu.Lock()
	b := m.buf
	m.buf = nil
	m.mu.Unlock()
	return b
}

func (m *migration) buffered() int {
	m.mu.Lock()
	n := len(m.buf)
	m.mu.Unlock()
	return n
}

// checkMigFault consults the fault-injection hook for a migration phase
// ("extract", "inject", "reinject", "replay", "flip"). Always nil outside
// fault-injection tests.
func (r *Router) checkMigFault(phase string) error {
	if r.migFault == nil {
		return nil
	}
	return r.migFault(phase)
}

// MigrateResult describes one completed migration.
type MigrateResult struct {
	Tenant string `json:"tenant"`
	From   string `json:"from"`
	To     string `json:"to"`
	// Served is the arrival ledger at quiesce — the state the transfer
	// captured; Replayed counts arrivals buffered during the move and
	// replayed on the target before the route flipped.
	Served   int64 `json:"served"`
	Replayed int   `json:"replayed"`
}

// Migrate moves one tenant to the node at target's address live. One
// migration runs at a time; arrivals for the tenant keep being accepted
// throughout (they buffer in the router between quiesce and flip, so a
// client sees added latency, never an error). Ordering and state identity
// are preserved end to end: everything forwarded before quiesce is in the
// extracted state, everything accepted during the move replays on the
// target in admission order before the route flips.
func (r *Router) Migrate(tenant, target string) (*MigrateResult, error) {
	r.migMu.Lock()
	defer r.migMu.Unlock()

	var tgt *node
	for _, n := range r.nodes {
		if n.addr == target || n.base == target {
			tgt = n
			break
		}
	}
	if tgt == nil {
		return nil, fmt.Errorf("cluster: %q is not a cluster node", target)
	}
	if !tgt.isHealthy() {
		return nil, fmt.Errorf("cluster: target node %s is unhealthy", tgt.addr)
	}

	// A route restored from the route log carries a ledger that may trail
	// the owner; reconcile it before quiescing on it, or extract?served=N
	// would wait for a count the node passed long ago.
	if err := r.ensureSynced(tenant); err != nil {
		return nil, err
	}

	// Quiesce: mark the route migrating and read the arrival ledger under
	// the write lock — from here arrivals buffer, and the ledger is exact
	// (no forward is in flight while the lock is held).
	r.mu.Lock()
	rt := r.routes[tenant]
	if rt == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("cluster: tenant %q has no route", tenant)
	}
	if rt.mig != nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("cluster: tenant %q is already migrating", tenant)
	}
	src := r.nodes[rt.node]
	if src == tgt {
		r.mu.Unlock()
		return nil, fmt.Errorf("cluster: tenant %q already lives on %s", tenant, tgt.addr)
	}
	if rt.follower == tgt.idx {
		r.mu.Unlock()
		return nil, fmt.Errorf("cluster: tenant %q's follower lives on %s; migrating onto it would collide with the replica", tenant, tgt.addr)
	}
	mig := &migration{}
	rt.mig = mig
	served := rt.count.Load()
	r.mu.Unlock()
	r.logger.Info("migration quiesced",
		"tenant", tenant, "from", src.addr, "to", tgt.addr, "served", served)

	res, err := r.runMigration(rt, mig, tenant, src, tgt, served)
	if err != nil {
		r.logger.Error("migration failed",
			"tenant", tenant, "from", src.addr, "to", tgt.addr, "err", err)
		return nil, err
	}
	r.migrations.Add(1)
	r.logger.Info("migration complete",
		"tenant", tenant, "from", src.addr, "to", tgt.addr,
		"served", res.Served, "replayed", res.Replayed)
	return res, nil
}

func (r *Router) runMigration(rt *route, mig *migration, tenant string, src, tgt *node, served int64) (*MigrateResult, error) {
	// Frames counted in the ledger may still sit in session write buffers;
	// flush every registered connection to the source so the node can see
	// all of them, then extract with served=N — the source waits until the
	// tenant has served exactly N arrivals before capturing.
	r.flushNodeUpstreams(src.idx)
	var transfer []byte
	err := r.checkMigFault("extract")
	if err == nil {
		err = r.postRaw(src.base+"/v1/tenants/"+tenant+"/extract?served="+fmt.Sprint(served), nil, &transfer)
	}
	if err != nil {
		r.abortMigration(rt, mig, src, tenant)
		return nil, fmt.Errorf("cluster: extracting %q from %s: %v", tenant, src.addr, err)
	}

	r.logger.Info("migration extracted", "tenant", tenant, "from", src.addr, "bytes", len(transfer))

	// Persist the source without the tenant so a restart there cannot
	// resurrect it. Best-effort: a node without checkpointing 404s.
	if err := r.postJSON(src.base+"/v1/checkpoint", nil, nil); err != nil {
		r.logger.Warn("post-extract checkpoint failed", "node", src.addr, "err", err)
	}

	err = r.checkMigFault("inject")
	if err == nil {
		err = r.postJSON(tgt.base+"/v1/tenants/"+tenant+"/inject", transfer, nil)
	}
	if err != nil {
		// The tenant exists only in the transfer bytes now. Put it back on
		// the source before failing; if even that fails the state is gone
		// from the cluster and the operator restores from the source's
		// checkpoint (taken just above, pre-extract state minus nothing —
		// the extract quiesced first).
		rerr := r.checkMigFault("reinject")
		if rerr == nil {
			rerr = r.postJSON(src.base+"/v1/tenants/"+tenant+"/inject", transfer, nil)
		}
		if rerr != nil {
			r.dropRoute(rt, mig, tenant)
			return nil, fmt.Errorf("cluster: inject of %q failed on target %s (%v) AND source %s (%v); tenant needs manual restore from checkpoint",
				tenant, tgt.addr, err, src.addr, rerr)
		}
		r.abortMigration(rt, mig, src, tenant)
		return nil, fmt.Errorf("cluster: injecting %q into %s: %v", tenant, tgt.addr, err)
	}
	r.logger.Info("migration injected", "tenant", tenant, "to", tgt.addr)
	if err := r.postJSON(tgt.base+"/v1/checkpoint", nil, nil); err != nil {
		r.logger.Warn("post-inject checkpoint failed", "node", tgt.addr, "err", err)
	}

	replayed, err := r.drainAndFlip(rt, mig, tenant, tgt, served)
	if err != nil {
		return nil, err
	}
	return &MigrateResult{Tenant: tenant, From: src.addr, To: tgt.addr, Served: served, Replayed: replayed}, nil
}

// drainAndFlip replays buffered arrivals to dst (and to the tenant's
// follower, whose replica must see the identical stream) until the buffer
// is observed empty under the write lock, then atomically points the route
// at dst with the ledger advanced by the replay. The replay rides the
// binary wire when the node listens on TCP — one BATCH stream instead of an
// HTTP POST per drained buffer — falling back to HTTP.
func (r *Router) drainAndFlip(rt *route, mig *migration, tenant string, dst *node, served int64) (int, error) {
	replayed := 0
	for {
		batch := mig.take()
		if len(batch) > 0 {
			err := r.checkMigFault("replay")
			n := 0
			if err == nil {
				n, err = r.replayArrivals(dst, tenant, batch)
			}
			replayed += n
			if err != nil {
				// Arrivals batch[n:] are lost — the same window a node
				// crash loses. Flip anyway: the tenant's state lives on
				// dst, and leaving the route migrating forever would
				// buffer arrivals with no one left to replay them.
				r.finishFlip(rt, mig, tenant, dst.idx, served+int64(replayed))
				return replayed, fmt.Errorf("cluster: replaying %d buffered arrivals of %q to %s: %v",
					len(batch)-n, tenant, dst.addr, err)
			}
			r.replayToFollower(rt, tenant, batch)
			continue
		}
		if err := r.checkMigFault("flip"); err != nil {
			// A fault between replay and flip models a coordinator crash at
			// the worst moment: the state lives on dst, so flip anyway and
			// surface the error — the invariant under test is that no
			// arrival is double-served and the route is never split.
			r.finishFlip(rt, mig, tenant, dst.idx, served+int64(replayed))
			return replayed, fmt.Errorf("cluster: flipping %q to %s: %v", tenant, dst.addr, err)
		}
		// Buffer looked empty; confirm under the write lock, where no
		// appender can be mid-flight, and flip.
		r.mu.Lock()
		mig.mu.Lock()
		empty := len(mig.buf) == 0
		mig.mu.Unlock()
		if empty {
			rt.node = dst.idx
			rt.count.Store(served + int64(replayed))
			rt.mig = nil
			follower, epoch := rt.follower, rt.epoch
			r.mu.Unlock()
			r.rlog.append(routeEvent{Op: "flip", Tenant: tenant, Node: dst.addr,
				Follower: r.nodeAddr(follower), Count: served + int64(replayed), Epoch: epoch})
			return replayed, nil
		}
		r.mu.Unlock()
	}
}

// replayToFollower forwards a replayed batch to the tenant's follower (if
// any) so the replica's stream stays identical to the owner's. A failure
// degrades the follower rather than the migration.
func (r *Router) replayToFollower(rt *route, tenant string, batch []server.Arrival) {
	r.mu.RLock()
	fidx := rt.follower
	r.mu.RUnlock()
	if fidx < 0 {
		return
	}
	if _, err := r.replayArrivals(r.nodes[fidx], tenant, batch); err != nil {
		r.degradeFollower(tenant, fidx, err)
	}
}

func (r *Router) finishFlip(rt *route, mig *migration, tenant string, nodeIdx int, count int64) {
	r.mu.Lock()
	rt.node = nodeIdx
	rt.count.Store(count)
	rt.mig = nil
	follower, epoch := rt.follower, rt.epoch
	r.mu.Unlock()
	r.rlog.append(routeEvent{Op: "flip", Tenant: tenant, Node: r.nodeAddr(nodeIdx),
		Follower: r.nodeAddr(follower), Count: count, Epoch: epoch})
	// Anything still buffered is dropped; take it so appenders' memory is
	// released. New arrivals forward normally once mig is cleared.
	mig.take()
}

// abortMigration undoes the quiesce: buffered arrivals replay to the
// source (whose state never left) and the route unmarks. Used when the
// move fails before the tenant landed anywhere else.
func (r *Router) abortMigration(rt *route, mig *migration, src *node, tenant string) {
	for {
		batch := mig.take()
		if len(batch) > 0 {
			n, err := r.replayArrivals(src, tenant, batch)
			r.mu.RLock()
			rt.count.Add(int64(n))
			r.mu.RUnlock()
			if err != nil {
				r.logger.Error("migration abort lost buffered arrivals",
					"tenant", tenant, "lost", len(batch)-n, "err", err)
			} else {
				r.replayToFollower(rt, tenant, batch)
				continue
			}
		}
		r.mu.Lock()
		mig.mu.Lock()
		empty := len(mig.buf) == 0
		mig.mu.Unlock()
		if empty {
			rt.mig = nil
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()
	}
}

// dropRoute removes a tenant whose state was lost mid-migration so later
// requests fail fast with no-route instead of hitting a node that has
// never heard of it.
func (r *Router) dropRoute(rt *route, mig *migration, tenant string) {
	r.mu.Lock()
	if cur := r.routes[tenant]; cur == rt {
		delete(r.routes, tenant)
	}
	r.mu.Unlock()
	r.rlog.append(routeEvent{Op: "drop", Tenant: tenant})
	mig.take()
}

// replayArrivals delivers a batch to a node outside the normal forwarding
// path (migration replay, abort replay, follower catch-up). It prefers the
// binary wire — one framed BATCH stream per call, acknowledged by the
// node's result frame — and falls back to the HTTP arrive endpoint when the
// node has no TCP listener or the stream fails before anything was written.
func (r *Router) replayArrivals(n *node, tenant string, batch []server.Arrival) (int, error) {
	if addr := n.tcp(); addr != "" {
		acc, err := r.replayBinary(addr, tenant, batch)
		if err == nil || acc > 0 {
			return acc, err
		}
		r.logger.Warn("binary replay failed before admission, retrying over HTTP",
			"node", n.addr, "tenant", tenant, "err", err)
	}
	return r.postArrivals(n, tenant, batch)
}

// replayBinary streams one tenant's batch to a node as BIND + BATCH frames
// on a dedicated connection and reads the node's result frame. The result's
// arrival count is authoritative: a stream that died mid-write reports how
// many arrivals the node actually admitted.
func (r *Router) replayBinary(addr, tenant string, batch []server.Arrival) (int, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	buf := server.AppendWireBind(nil, 0, tenant)
	if err := server.WriteFrame(bw, buf); err != nil {
		return 0, err
	}
	items := make([]server.WireItem, 0, replayChunk)
	for off := 0; off < len(batch); off += replayChunk {
		end := off + replayChunk
		if end > len(batch) {
			end = len(batch)
		}
		items = items[:0]
		for _, a := range batch[off:end] {
			items = append(items, server.WireItem{Point: a.Point, Demands: a.Demands})
		}
		buf = server.AppendWireBatch(buf[:0], 0, items)
		if err := server.WriteFrame(bw, buf); err != nil {
			return 0, fmt.Errorf("writing batch frame: %v", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite() //nolint:errcheck // read below surfaces a dead conn
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	var res server.TCPResult
	for {
		frame, err := server.ReadFrame(conn, nil)
		if err != nil {
			return 0, fmt.Errorf("reading result: %v", err)
		}
		// Skip ack frames (binary streams may ack); the JSON result frame
		// is the last one before EOF.
		if len(frame) > 0 && frame[0] == server.WireMagic {
			continue
		}
		if err := json.Unmarshal(frame, &res); err != nil {
			return 0, fmt.Errorf("decoding result: %v", err)
		}
		break
	}
	if !res.OK {
		return res.Arrivals, fmt.Errorf("node result: %s", res.Error)
	}
	return res.Arrivals, nil
}

// replayChunk bounds one BATCH frame in the binary replay stream.
const replayChunk = 512
