package cluster

import (
	"fmt"
	"sync"

	"repro/internal/server"
)

// migration buffers arrivals for a tenant whose route is mid-move. Sessions
// append under Router.mu.RLock + buf's own lock; the coordinator drains
// under buf's lock alone and flips the route once the buffer is observed
// empty under the write lock (at which point no appender can be in flight).
type migration struct {
	mu  sync.Mutex
	buf []server.Arrival
}

func (m *migration) add(batch ...server.Arrival) {
	m.mu.Lock()
	m.buf = append(m.buf, batch...)
	m.mu.Unlock()
}

func (m *migration) take() []server.Arrival {
	m.mu.Lock()
	b := m.buf
	m.buf = nil
	m.mu.Unlock()
	return b
}

// MigrateResult describes one completed migration.
type MigrateResult struct {
	Tenant string `json:"tenant"`
	From   string `json:"from"`
	To     string `json:"to"`
	// Served is the arrival ledger at quiesce — the state the transfer
	// captured; Replayed counts arrivals buffered during the move and
	// replayed on the target before the route flipped.
	Served   int64 `json:"served"`
	Replayed int   `json:"replayed"`
}

// Migrate moves one tenant to the node at target's address live. One
// migration runs at a time; arrivals for the tenant keep being accepted
// throughout (they buffer in the router between quiesce and flip, so a
// client sees added latency, never an error). Ordering and state identity
// are preserved end to end: everything forwarded before quiesce is in the
// extracted state, everything accepted during the move replays on the
// target in admission order before the route flips.
func (r *Router) Migrate(tenant, target string) (*MigrateResult, error) {
	r.migMu.Lock()
	defer r.migMu.Unlock()

	var tgt *node
	for _, n := range r.nodes {
		if n.addr == target || n.base == target {
			tgt = n
			break
		}
	}
	if tgt == nil {
		return nil, fmt.Errorf("cluster: %q is not a cluster node", target)
	}
	if !tgt.isHealthy() {
		return nil, fmt.Errorf("cluster: target node %s is unhealthy", tgt.addr)
	}

	// Quiesce: mark the route migrating and read the arrival ledger under
	// the write lock — from here arrivals buffer, and the ledger is exact
	// (no forward is in flight while the lock is held).
	r.mu.Lock()
	rt := r.routes[tenant]
	if rt == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("cluster: tenant %q has no route", tenant)
	}
	if rt.mig != nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("cluster: tenant %q is already migrating", tenant)
	}
	src := r.nodes[rt.node]
	if src == tgt {
		r.mu.Unlock()
		return nil, fmt.Errorf("cluster: tenant %q already lives on %s", tenant, tgt.addr)
	}
	mig := &migration{}
	rt.mig = mig
	served := rt.count.Load()
	r.mu.Unlock()
	r.logger.Info("migration quiesced",
		"tenant", tenant, "from", src.addr, "to", tgt.addr, "served", served)

	res, err := r.runMigration(rt, mig, tenant, src, tgt, served)
	if err != nil {
		r.logger.Error("migration failed",
			"tenant", tenant, "from", src.addr, "to", tgt.addr, "err", err)
		return nil, err
	}
	r.migrations.Add(1)
	r.logger.Info("migration complete",
		"tenant", tenant, "from", src.addr, "to", tgt.addr,
		"served", res.Served, "replayed", res.Replayed)
	return res, nil
}

func (r *Router) runMigration(rt *route, mig *migration, tenant string, src, tgt *node, served int64) (*MigrateResult, error) {
	// Frames counted in the ledger may still sit in session write buffers;
	// flush every registered connection to the source so the node can see
	// all of them, then extract with served=N — the source waits until the
	// tenant has served exactly N arrivals before capturing.
	r.flushNodeUpstreams(src.idx)
	var transfer []byte
	if err := r.postRaw(src.base+"/v1/tenants/"+tenant+"/extract?served="+fmt.Sprint(served), nil, &transfer); err != nil {
		r.abortMigration(rt, mig, src, tenant)
		return nil, fmt.Errorf("cluster: extracting %q from %s: %v", tenant, src.addr, err)
	}

	r.logger.Info("migration extracted", "tenant", tenant, "from", src.addr, "bytes", len(transfer))

	// Persist the source without the tenant so a restart there cannot
	// resurrect it. Best-effort: a node without checkpointing 404s.
	if err := r.postJSON(src.base+"/v1/checkpoint", nil, nil); err != nil {
		r.logger.Warn("post-extract checkpoint failed", "node", src.addr, "err", err)
	}

	if err := r.postJSON(tgt.base+"/v1/tenants/"+tenant+"/inject", transfer, nil); err != nil {
		// The tenant exists only in the transfer bytes now. Put it back on
		// the source before failing; if even that fails the state is gone
		// from the cluster and the operator restores from the source's
		// checkpoint (taken just above, pre-extract state minus nothing —
		// the extract quiesced first).
		if rerr := r.postJSON(src.base+"/v1/tenants/"+tenant+"/inject", transfer, nil); rerr != nil {
			r.dropRoute(rt, mig, tenant)
			return nil, fmt.Errorf("cluster: inject of %q failed on target %s (%v) AND source %s (%v); tenant needs manual restore from checkpoint",
				tenant, tgt.addr, err, src.addr, rerr)
		}
		r.abortMigration(rt, mig, src, tenant)
		return nil, fmt.Errorf("cluster: injecting %q into %s: %v", tenant, tgt.addr, err)
	}
	r.logger.Info("migration injected", "tenant", tenant, "to", tgt.addr)
	if err := r.postJSON(tgt.base+"/v1/checkpoint", nil, nil); err != nil {
		r.logger.Warn("post-inject checkpoint failed", "node", tgt.addr, "err", err)
	}

	replayed, err := r.drainAndFlip(rt, mig, tenant, tgt, served)
	if err != nil {
		return nil, err
	}
	return &MigrateResult{Tenant: tenant, From: src.addr, To: tgt.addr, Served: served, Replayed: replayed}, nil
}

// drainAndFlip replays buffered arrivals to dst until the buffer is
// observed empty under the write lock, then atomically points the route at
// dst with the ledger advanced by the replay.
func (r *Router) drainAndFlip(rt *route, mig *migration, tenant string, dst *node, served int64) (int, error) {
	replayed := 0
	for {
		batch := mig.take()
		if len(batch) > 0 {
			n, err := r.postArrivals(dst, tenant, batch)
			replayed += n
			if err != nil {
				// Arrivals batch[n:] are lost — the same window a node
				// crash loses. Flip anyway: the tenant's state lives on
				// dst, and leaving the route migrating forever would
				// buffer arrivals with no one left to replay them.
				r.finishFlip(rt, mig, dst.idx, served+int64(replayed))
				return replayed, fmt.Errorf("cluster: replaying %d buffered arrivals of %q to %s: %v",
					len(batch)-n, tenant, dst.addr, err)
			}
			continue
		}
		// Buffer looked empty; confirm under the write lock, where no
		// appender can be mid-flight, and flip.
		r.mu.Lock()
		mig.mu.Lock()
		empty := len(mig.buf) == 0
		mig.mu.Unlock()
		if empty {
			rt.node = dst.idx
			rt.count.Store(served + int64(replayed))
			rt.mig = nil
			r.mu.Unlock()
			return replayed, nil
		}
		r.mu.Unlock()
	}
}

func (r *Router) finishFlip(rt *route, mig *migration, nodeIdx int, count int64) {
	r.mu.Lock()
	rt.node = nodeIdx
	rt.count.Store(count)
	rt.mig = nil
	r.mu.Unlock()
	// Anything still buffered is dropped; take it so appenders' memory is
	// released. New arrivals forward normally once mig is cleared.
	mig.take()
}

// abortMigration undoes the quiesce: buffered arrivals replay to the
// source (whose state never left) and the route unmarks. Used when the
// move fails before the tenant landed anywhere else.
func (r *Router) abortMigration(rt *route, mig *migration, src *node, tenant string) {
	for {
		batch := mig.take()
		if len(batch) > 0 {
			n, err := r.postArrivals(src, tenant, batch)
			r.mu.RLock()
			rt.count.Add(int64(n))
			r.mu.RUnlock()
			if err != nil {
				r.logger.Error("migration abort lost buffered arrivals",
					"tenant", tenant, "lost", len(batch)-n, "err", err)
			} else {
				continue
			}
		}
		r.mu.Lock()
		mig.mu.Lock()
		empty := len(mig.buf) == 0
		mig.mu.Unlock()
		if empty {
			rt.mig = nil
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()
	}
}

// dropRoute removes a tenant whose state was lost mid-migration so later
// requests fail fast with no-route instead of hitting a node that has
// never heard of it.
func (r *Router) dropRoute(rt *route, mig *migration, tenant string) {
	r.mu.Lock()
	if cur := r.routes[tenant]; cur == rt {
		delete(r.routes, tenant)
	}
	r.mu.Unlock()
	mig.take()
}
