package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHarmonicSmall(t *testing.T) {
	cases := map[int]float64{
		0: 0,
		1: 1,
		2: 1.5,
		3: 1.5 + 1.0/3,
		4: 1.5 + 1.0/3 + 0.25,
	}
	for n, want := range cases {
		if got := Harmonic(n); math.Abs(got-want) > 1e-12 {
			t.Errorf("H_%d = %g, want %g", n, got, want)
		}
	}
	if got := Harmonic(-5); got != 0 {
		t.Errorf("H_{-5} = %g, want 0", got)
	}
}

func TestHarmonicAsymptotic(t *testing.T) {
	// The asymptotic branch must agree with the exact sum at the handover.
	n := int(1e7)
	exact := Harmonic(n)
	const gamma = 0.57721566490153286060651209008240243
	approx := math.Log(float64(n)) + gamma + 1/(2*float64(n))
	if math.Abs(exact-approx) > 1e-9 {
		t.Errorf("H_1e7: exact %g vs asymptotic %g", exact, approx)
	}
	// Beyond the handover, values must keep increasing.
	if Harmonic(2e7) <= exact {
		t.Error("Harmonic not increasing past the asymptotic handover")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N/Mean = %d/%g", s.N, s.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %g, want %g", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %g", s.Median)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %g", got)
	}
	for _, bad := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile(xs, -0.1) },
		func() { Quantile(xs, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit := FitLinear(xs, ys)
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %g, want 1", fit.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	// All xs equal: slope defined as 0, intercept = mean.
	fit := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3})
	if fit.Slope != 0 || fit.Intercept != 2 {
		t.Errorf("degenerate fit = %+v", fit)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	FitLinear([]float64{1}, []float64{1, 2})
}

func TestFitPowerLaw(t *testing.T) {
	// y = 3·x^1.5 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.5)
	}
	b, a, r2 := FitPowerLaw(xs, ys)
	if math.Abs(b-1.5) > 1e-9 || math.Abs(a-3) > 1e-9 || r2 < 1-1e-9 {
		t.Errorf("power fit: b=%g a=%g r2=%g", b, a, r2)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive data must panic")
		}
	}()
	FitPowerLaw([]float64{0, 1}, []float64{1, 2})
}

func TestHypergeometricValidation(t *testing.T) {
	if _, err := NewHypergeometric(10, 11, 5); err == nil {
		t.Error("K > N accepted")
	}
	if _, err := NewHypergeometric(10, 5, 11); err == nil {
		t.Error("D > N accepted")
	}
	if _, err := NewHypergeometric(-1, 0, 0); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := NewHypergeometric(10, 5, 5); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

func TestHypergeometricPMFSumsToOne(t *testing.T) {
	h, _ := NewHypergeometric(30, 12, 10)
	var sum float64
	for y := 0; y <= h.D; y++ {
		p := h.PMF(y)
		if p < 0 || p > 1 {
			t.Fatalf("PMF(%d) = %g out of range", y, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %g", sum)
	}
	if h.PMF(-1) != 0 || h.PMF(h.D+1) != 0 {
		t.Error("PMF outside support must be 0")
	}
}

func TestHypergeometricMeanAndCDF(t *testing.T) {
	h, _ := NewHypergeometric(20, 8, 5)
	if want := 2.0; math.Abs(h.Mean()-want) > 1e-12 {
		t.Errorf("Mean = %g, want %g", h.Mean(), want)
	}
	if got := h.CDF(h.D); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(D) = %g", got)
	}
	if got := h.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %g", got)
	}
	// CDF is non-decreasing.
	prev := 0.0
	for y := 0; y <= h.D; y++ {
		c := h.CDF(y)
		if c < prev-1e-12 {
			t.Fatalf("CDF decreasing at %d", y)
		}
		prev = c
	}
}

func TestHypergeometricSampleMatchesMean(t *testing.T) {
	h, _ := NewHypergeometric(100, 25, 40)
	rng := rand.New(rand.NewSource(42))
	var sum float64
	const trials = 5000
	for i := 0; i < trials; i++ {
		y := h.Sample(rng)
		if y < 0 || y > h.D || y > h.K {
			t.Fatalf("sample %d outside support", y)
		}
		sum += float64(y)
	}
	got := sum / trials
	if math.Abs(got-h.Mean()) > 0.15 {
		t.Errorf("empirical mean %g vs %g", got, h.Mean())
	}
}

func TestHypergeometricTailBound(t *testing.T) {
	// The Hoeffding–Chvátal bound must dominate the exact tail,
	// P(Y ≥ E+tD) ≤ exp(-2t²D) — the inequality used in Equation (3).
	h, _ := NewHypergeometric(64, 16, 20)
	for _, tt := range []float64{0.05, 0.1, 0.2, 0.3} {
		thresh := h.Mean() + tt*float64(h.D)
		exact := 0.0
		for y := int(math.Ceil(thresh)); y <= h.D; y++ {
			exact += h.PMF(y)
		}
		if bound := h.TailUpper(tt); exact > bound+1e-9 {
			t.Errorf("t=%g: exact tail %g exceeds bound %g", tt, exact, bound)
		}
	}
	if h.TailUpper(0) != 1 || h.TailUpper(-1) != 1 {
		t.Error("non-positive t must give trivial bound 1")
	}
}

// Property: Harmonic is monotone and bounded by 1+ln n.
func TestQuickHarmonicBounds(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%5000 + 1
		h := Harmonic(n)
		if h < math.Log(float64(n)) || h > 1+math.Log(float64(n)) {
			return false
		}
		return Harmonic(n+1) > h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Summarize respects Min ≤ Median ≤ Max and Min ≤ Mean ≤ Max.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e15 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHarmonic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Harmonic(100000)
	}
}

func BenchmarkHypergeomSample(b *testing.B) {
	h, _ := NewHypergeometric(4096, 64, 1024)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Sample(rng)
	}
}
