// Package stats provides the small statistical toolkit the reproduction
// needs: harmonic numbers (the H_n in Theorem 4's scaling factor),
// descriptive summaries for repeated experiment runs, the hypergeometric
// distribution from the Theorem 2 proof (with the Hoeffding–Chvátal tail
// bound of Equation (3)), and least-squares fits for empirical scaling laws.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Harmonic returns H_n = Σ_{k=1..n} 1/k, with H_0 = 0. For n beyond 1e7 it
// switches to the asymptotic expansion ln n + γ + 1/(2n) − 1/(12n²), whose
// error is far below float64 resolution there.
func Harmonic(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n <= 1e7 {
		// Sum smallest-first for floating-point accuracy.
		var h float64
		for k := n; k >= 1; k-- {
			h += 1 / float64(k)
		}
		return h
	}
	const gamma = 0.57721566490153286060651209008240243
	fn := float64(n)
	return math.Log(fn) + gamma + 1/(2*fn) - 1/(12*fn*fn)
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty sample or a
// q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LinearFit holds a least-squares line y = Slope·x + Intercept with the
// coefficient of determination R².
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear computes the ordinary least-squares fit of ys against xs.
// It panics if the slices differ in length or have fewer than two points.
func FitLinear(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLinear length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		panic("stats: FitLinear needs at least two points")
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{Slope: 0, Intercept: sy / n, R2: 0}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R² = 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// FitPowerLaw fits y = a·x^b by least squares in log–log space and returns
// (exponent b, prefactor a, R²). All xs and ys must be positive.
func FitPowerLaw(xs, ys []float64) (exponent, prefactor, r2 float64) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic("stats: FitPowerLaw requires positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	fit := FitLinear(lx, ly)
	return fit.Slope, math.Exp(fit.Intercept), fit.R2
}
