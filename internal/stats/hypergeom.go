package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Hypergeometric is the distribution of the number of "successes" in n draws
// without replacement from a population of N items containing K successes —
// exactly the Y ~ Hypergeometric(|S|/2, √|S|/2, |S|/c) variable in the proof
// of Theorem 2.
type Hypergeometric struct {
	N int // population size
	K int // successes in the population
	D int // number of draws
}

// NewHypergeometric validates the parameters (0 ≤ K, D ≤ N).
func NewHypergeometric(n, k, d int) (Hypergeometric, error) {
	if n < 0 || k < 0 || d < 0 || k > n || d > n {
		return Hypergeometric{}, fmt.Errorf("stats: invalid hypergeometric parameters N=%d K=%d D=%d", n, k, d)
	}
	return Hypergeometric{N: n, K: k, D: d}, nil
}

// Mean returns E[Y] = D·K/N.
func (h Hypergeometric) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.D) * float64(h.K) / float64(h.N)
}

// PMF returns P(Y = y) computed in log space for numeric stability.
func (h Hypergeometric) PMF(y int) float64 {
	if y < 0 || y > h.D || y > h.K || h.D-y > h.N-h.K {
		return 0
	}
	lp := logChoose(h.K, y) + logChoose(h.N-h.K, h.D-y) - logChoose(h.N, h.D)
	return math.Exp(lp)
}

// CDF returns P(Y ≤ y).
func (h Hypergeometric) CDF(y int) float64 {
	if y < 0 {
		return 0
	}
	var sum float64
	for i := 0; i <= y && i <= h.D; i++ {
		sum += h.PMF(i)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Sample draws one value by simulating the draws without replacement in
// O(D) time.
func (h Hypergeometric) Sample(rng *rand.Rand) int {
	succ := 0
	remK, remN := h.K, h.N
	for i := 0; i < h.D; i++ {
		if rng.Float64() < float64(remK)/float64(remN) {
			succ++
			remK--
		}
		remN--
	}
	return succ
}

// TailUpper bounds P(Y ≥ E[Y] + t·D) ≤ exp(−2t²D), the Hoeffding bound that
// Chvátal showed applies to the hypergeometric tail — the bound invoked in
// Equation (3) of the paper.
func (h Hypergeometric) TailUpper(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-2 * t * t * float64(h.D))
}

// logChoose returns ln C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
