package sim

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation_candidates", "ablation_heavy", "ablation_pred", "ablation_reassign",
		"cor3", "dual", "ext_order", "ext_split", "fig1", "fig2", "fig3", "lem12", "lem14", "lpgap", "perf", "thm18", "thm19", "thm2", "thm4",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, e := range All() {
		if e.Title == "" || e.Reproduces == "" || e.Run == nil {
			t.Errorf("experiment %q missing metadata", e.ID)
		}
	}
}

func TestRunByIDUnknown(t *testing.T) {
	if _, err := RunByID("nope", quickCfg()); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range res.Tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tab.Title)
				}
				if out := tab.String(); out == "" {
					t.Errorf("%s: table %q renders empty", e.ID, tab.Title)
				}
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Randomized experiments must be reproducible under a fixed seed.
	for _, id := range []string{"thm2", "fig1", "lem12"} {
		a, err := RunByID(id, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunByID(id, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if a.Tables[0].String() != b.Tables[0].String() {
			t.Errorf("%s not deterministic under fixed seed", id)
		}
	}
}

// cell parses the table cell at (row, col) as a float.
func cell(t *testing.T, tab interface{ String() string }, rows [][]string, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a float:\n%s", row, col, rows[row][col], tab.String())
	}
	return v
}

func TestThm2RatiosRespectLowerBound(t *testing.T) {
	res, err := RunByID("thm2", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// Columns: |S|, sqrt(S), LB, pd, rand, per-commodity, no-prediction.
	for ri := range tab.Rows {
		lb := cell(t, tab, tab.Rows, ri, 2)
		for ci := 3; ci <= 6; ci++ {
			ratio := cell(t, tab, tab.Rows, ri, ci)
			if ratio < lb-1e-9 {
				t.Errorf("row %d col %d: ratio %g below Theorem 2 bound %g", ri, ci, ratio, lb)
			}
		}
	}
}

func TestFig2CurvesMeetAtEndpointsAndPeak(t *testing.T) {
	res, err := RunByID("fig2", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if first[1] != "1" || first[2] != "1" {
		t.Errorf("x=0 row not (1,1): %v", first)
	}
	if last[1] != "1" || last[2] != "1" {
		t.Errorf("x=2 row not (1,1): %v", last)
	}
	// Find the x=1 row: both curves at 10 for |S|=10000.
	found := false
	for _, row := range tab.Rows {
		if row[0] == "1" {
			found = true
			if row[1] != "10" || row[2] != "10" {
				t.Errorf("x=1 row: %v, want peak 10/10", row)
			}
		}
	}
	if !found {
		t.Error("no x=1 row in fig2")
	}
}

func TestFig3ChoosesExpectedModes(t *testing.T) {
	res, err := RunByID("fig3", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("fig3 rows: %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		if strings.Contains(row[3], "UNEXPECTED") {
			t.Errorf("fig3 mode mismatch: %v", row)
		}
	}
	if !strings.Contains(tab.Rows[0][3], "small") {
		t.Errorf("left scenario chose %q", tab.Rows[0][3])
	}
	if !strings.Contains(tab.Rows[1][3], "large") {
		t.Errorf("right scenario chose %q", tab.Rows[1][3])
	}
}

func TestLem12UtilizationBelowOne(t *testing.T) {
	res, err := RunByID("lem12", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	for ri := range tab.Rows {
		if util := cell(t, tab, tab.Rows, ri, 4); util > 1+1e-9 {
			t.Errorf("row %d: utilization %g exceeds 1 (Lemma 12 violated)", ri, util)
		}
	}
}

func TestDualExperimentFeasible(t *testing.T) {
	res, err := RunByID("dual", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	for ri := range tab.Rows {
		if cd := cell(t, tab, tab.Rows, ri, 3); cd > 3+1e-6 {
			t.Errorf("row %d: cost/dual = %g exceeds 3 (Corollary 8)", ri, cd)
		}
		if viol := cell(t, tab, tab.Rows, ri, 5); viol > 1e-6 {
			t.Errorf("row %d: dual violation %g > 0 (Corollary 17)", ri, viol)
		}
	}
	// Weak duality sandwich: γ·dual ≤ OPT.
	sand := res.Tables[1]
	if gd, opt := cell(t, sand, sand.Rows, 0, 0), cell(t, sand, sand.Rows, 0, 1); gd > opt+1e-9 {
		t.Errorf("γ·dual %g exceeds exact OPT %g", gd, opt)
	}
}

func TestAblationPredShowsSeparation(t *testing.T) {
	res, err := RunByID("ablation_pred", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// On the largest |S|: no-prediction PD ratio must exceed plain PD.
	last := len(tab.Rows) - 1
	pd := cell(t, tab, tab.Rows, last, 2)
	pdNoPred := cell(t, tab, tab.Rows, last, 3)
	if pdNoPred <= pd {
		t.Errorf("no-prediction ratio %g not worse than prediction %g", pdNoPred, pd)
	}
}

func TestThm4PerCommodityWorseOnBundles(t *testing.T) {
	res, err := RunByID("thm4", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	sTab := res.Tables[1]
	// Columns: |S|, OPT, source, pd, rand, per-commodity, pc/sqrt(S).
	last := len(sTab.Rows) - 1
	pd := cell(t, sTab, sTab.Rows, last, 3)
	pc := cell(t, sTab, sTab.Rows, last, 5)
	if pc <= pd {
		t.Errorf("per-commodity ratio %g not worse than PD %g on bundled demand at largest |S|", pc, pd)
	}
}

func TestLPGapSandwich(t *testing.T) {
	res, err := RunByID("lpgap", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Tables[0]
	// Columns: trial, LP, exact OPT, gap, pd cost, pd/LP, gamma*dual.
	for ri := range tab.Rows {
		lpVal := cell(t, tab, tab.Rows, ri, 1)
		opt := cell(t, tab, tab.Rows, ri, 2)
		pdCost := cell(t, tab, tab.Rows, ri, 4)
		gd := cell(t, tab, tab.Rows, ri, 6)
		if lpVal > opt+1e-6 {
			t.Errorf("row %d: LP %g exceeds exact OPT %g", ri, lpVal, opt)
		}
		if opt > pdCost+1e-6 {
			t.Errorf("row %d: exact OPT %g exceeds PD cost %g", ri, opt, pdCost)
		}
		if gd > lpVal+1e-6 {
			t.Errorf("row %d: γ·dual %g exceeds LP %g (weak duality)", ri, gd, lpVal)
		}
	}
}

func BenchmarkQuickThm2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunByID("thm2", Config{Seed: int64(i), Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}
