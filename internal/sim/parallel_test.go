package sim

import (
	"testing"
)

// tableStrings renders every table of a result.
func tableStrings(res *Result) []string {
	out := make([]string, len(res.Tables))
	for i, tab := range res.Tables {
		out[i] = tab.String()
	}
	return out
}

// TestWorkersDeterministic is the harness determinism contract: the same
// Config.Seed must yield identical report.Table output for Workers=1 and
// Workers=8 across every registered experiment in Quick mode. Wall-clock
// experiments (perf) are exempt from value identity — their timings are
// machine-dependent by documented design — but must still produce the same
// table shape.
func TestWorkersDeterministic(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			seq, err := e.Run(Config{Seed: 1, Quick: true, Workers: 1})
			if err != nil {
				t.Fatalf("%s sequential: %v", e.ID, err)
			}
			par8, err := e.Run(Config{Seed: 1, Quick: true, Workers: 8})
			if err != nil {
				t.Fatalf("%s workers=8: %v", e.ID, err)
			}
			seqTabs, parTabs := tableStrings(seq), tableStrings(par8)
			if len(seqTabs) != len(parTabs) {
				t.Fatalf("%s: %d tables sequential vs %d with workers=8", e.ID, len(seqTabs), len(parTabs))
			}
			for i := range seqTabs {
				if e.WallClock {
					if len(seq.Tables[i].Rows) != len(par8.Tables[i].Rows) ||
						len(seq.Tables[i].Columns) != len(par8.Tables[i].Columns) {
						t.Errorf("%s table %d: shape differs between worker counts", e.ID, i)
					}
					continue
				}
				if seqTabs[i] != parTabs[i] {
					t.Errorf("%s table %d: workers=8 output differs from sequential:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
						e.ID, i, seqTabs[i], parTabs[i])
				}
			}
		})
	}
}

// TestWorkersDefaultIsParallel pins the Workers semantics: 0 means
// GOMAXPROCS and must agree with an explicit worker count on a randomized
// experiment.
func TestWorkersDefaultIsParallel(t *testing.T) {
	a, err := RunByID("thm2", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunByID("thm2", Config{Seed: 3, Quick: true, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tables[0].String() != b.Tables[0].String() {
		t.Error("Workers=0 (GOMAXPROCS) output differs from Workers=3")
	}
}
