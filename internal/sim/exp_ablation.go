package sim

import (
	"sort"

	"repro/internal/baseline"
	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "ablation_pred",
		Title:      "Prediction ablation: large facilities disabled",
		Reproduces: "Section 2 discussion (prediction is necessary for sub-linear |S| dependence)",
		Run:        runAblationPred,
	})
	register(Experiment{
		ID:         "ablation_candidates",
		Title:      "Candidate facility locations: all points vs request points vs one point",
		Reproduces: "implementation choice discussed in DESIGN.md",
		Run:        runAblationCandidates,
	})
	register(Experiment{
		ID:         "ablation_heavy",
		Title:      "Heavy-aware extension: threshold sweep on heavy-hostile workloads",
		Reproduces: "Section 5 closing remarks (excluding heavy commodities)",
		Run:        runAblationHeavy,
	})
	register(Experiment{
		ID:         "ablation_reassign",
		Title:      "RAND connection rule: two-mode (Figure 3) vs exact subset DP",
		Reproduces: "implementation ablation of Algorithm 2's connection step",
		Run:        runAblationReassign,
	})
}

// exactTinyOPT computes exact OPT for tiny instances (helper shared with the
// dual experiment).
func exactTinyOPT(in *instance.Instance) float64 {
	return baseline.ExactSmall(in, 4).Cost
}

// Workload generation in the ablations below follows the thm4/thm19
// discipline: every row draws from its own sub-seeded rng stream
// (workload.Rng with a per-experiment stream id and a per-row index), so
// whole rows fan out across Config.Workers with byte-identical tables.

func runAblationPred(cfg Config) (*Result, error) {
	sizes := pick(cfg, []int{16, 64}, []int{16, 64, 256, 1024})
	tab := report.NewTable("ablation_pred: full-universe single-commodity sequence at one point",
		"|S|", "OPT", "pd", "pd(no-prediction)", "rand", "rand(no-prediction)")
	tab.Note = "without prediction both algorithms degrade from Θ(√|S|) to Θ(|S|)"
	factories := []online.Factory{
		core.PDFactory(core.Options{}),
		core.PDFactory(core.Options{DisablePrediction: true}),
		core.RandFactory(core.Options{}),
		core.RandFactory(core.Options{DisablePrediction: true}),
	}
	type predRow struct {
		opt    float64
		ratios []float64
	}
	rows, err := par.Map(cfg.Workers, len(sizes), func(i int) (predRow, error) {
		u := sizes[i]
		rng := workload.Rng(cfg.Seed, 12, int64(i))
		tr := workload.SinglePointSingles(rng, cost.CeilSqrt(u), u)
		opt, ok := baseline.SinglePointOPT(tr.Instance)
		if !ok {
			panic("sim: single-point workload not on a single point")
		}
		ratios := make([]float64, len(factories))
		for fi, f := range factories {
			c, err := meanCost(seqConfig(cfg), f, tr, cfg.Seed, pickInt(cfg, 2, 5))
			if err != nil {
				return predRow{}, err
			}
			ratios[fi] = c / opt
		}
		return predRow{opt: opt, ratios: ratios}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		row := []interface{}{sizes[i], r.opt}
		for _, ratio := range r.ratios {
			row = append(row, ratio)
		}
		tab.AddRow(row...)
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}

func runAblationCandidates(cfg Config) (*Result, error) {
	rng := workload.Rng(cfg.Seed, 13, 0)
	u := pickInt(cfg, 5, 8)
	n := pickInt(cfg, 20, 80)
	points := pickInt(cfg, 10, 30)
	space := metric.RandomEuclidean(rng, points, 2, 50)
	costs := cost.PowerLaw(u, 1, 2)
	tr := workload.Uniform(rng, space, costs, n, u/2+1)

	reqPoints := map[int]bool{}
	for _, r := range tr.Instance.Requests {
		reqPoints[r.Point] = true
	}
	var reqCands []int
	for p := range reqPoints {
		reqCands = append(reqCands, p)
	}
	// Candidate order breaks distance ties in PD's facility placement; map
	// iteration order would make this row nondeterministic run to run.
	sort.Ints(reqCands)

	opt, src := bestKnownOPT(tr, pickInt(cfg, 12, 40))
	tab := report.NewTable("ablation_candidates: PD-OMFLP candidate location policies",
		"policy", "candidates", "cost", "ratio vs "+src)
	policies := []struct {
		name  string
		cands []int
	}{
		{"all points", nil},
		{"request points", reqCands},
		{"single point {0}", []int{0}},
	}
	algCosts, err := par.Map(cfg.Workers, len(policies), func(i int) (float64, error) {
		return meanCost(seqConfig(cfg), core.PDFactory(core.Options{Candidates: policies[i].cands}), tr, cfg.Seed, 1)
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range policies {
		nCands := len(tc.cands)
		if tc.cands == nil {
			nCands = space.Len()
		}
		tab.AddRow(tc.name, nCands, algCosts[i], algCosts[i]/opt)
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}

// heavyHostileCost penalizes one commodity heavily (violating Condition 1),
// the situation of the closing remarks.
type heavyHostileCost struct {
	u       int
	premium float64
}

func (h *heavyHostileCost) Universe() int { return h.u }
func (h *heavyHostileCost) Name() string  { return "heavy-hostile" }
func (h *heavyHostileCost) Cost(m int, sigma commodity.Set) float64 {
	k := sigma.Len()
	if k == 0 {
		return 0
	}
	c := float64(k)
	if sigma.Contains(h.u - 1) {
		c += h.premium
	}
	return c
}

func runAblationHeavy(cfg Config) (*Result, error) {
	rng := workload.Rng(cfg.Seed, 14, 0)
	u := pickInt(cfg, 6, 10)
	n := pickInt(cfg, 30, 100)
	space := metric.RandomEuclidean(rng, pickInt(cfg, 8, 16), 2, 5)
	costs := &heavyHostileCost{u: u, premium: 150}

	in := &instance.Instance{Space: space, Costs: costs}
	light := commodity.Full(u - 1)
	for i := 0; i < n; i++ {
		d := commodity.RandomSubsetOf(rng, light, 1+rng.Intn(u-2))
		if i%10 == 9 {
			d = d.With(u - 1) // the heavy commodity appears rarely
		}
		in.Requests = append(in.Requests, instance.Request{Point: rng.Intn(space.Len()), Demands: d})
	}
	tr := &workload.Trace{Instance: in, Name: "heavy-hostile"}

	opt, src := bestKnownOPT(tr, pickInt(cfg, 10, 30))
	tab := report.NewTable("ablation_heavy: threshold θ sweep",
		"algorithm", "theta", "cost", "ratio vs "+src)
	thetas := []float64{1.5, 3, 10, 50}
	costs2, err := par.Map(cfg.Workers, len(thetas)+1, func(i int) (float64, error) {
		f := core.PDFactory(core.Options{})
		if i > 0 {
			f = core.HeavyFactory(core.Options{}, thetas[i-1])
		}
		return meanCost(seqConfig(cfg), f, tr, cfg.Seed, 1)
	})
	if err != nil {
		return nil, err
	}
	tab.AddRow("pd (plain)", "-", costs2[0], costs2[0]/opt)
	for i, theta := range thetas {
		tab.AddRow("pd (heavy-aware)", theta, costs2[i+1], costs2[i+1]/opt)
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}

func runAblationReassign(cfg Config) (*Result, error) {
	rng := workload.Rng(cfg.Seed, 15, 0)
	u := pickInt(cfg, 5, 8)
	n := pickInt(cfg, 25, 100)
	space := metric.RandomEuclidean(rng, pickInt(cfg, 10, 25), 2, 50)
	costs := cost.PowerLaw(u, 1, 2)
	tr := workload.Uniform(rng, space, costs, n, u)

	opt, src := bestKnownOPT(tr, pickInt(cfg, 12, 40))
	reps := pickInt(cfg, 3, 10)
	tab := report.NewTable("ablation_reassign: RAND-OMFLP connection rules",
		"rule", "mean cost", "ratio vs "+src)
	rules := []struct {
		name string
		opts core.Options
	}{
		{"two-mode (Figure 3)", core.Options{}},
		{"exact subset DP", core.Options{OptimalReassign: true}},
	}
	// The two rules evaluate independently: fan whole rows out and merge
	// in rule order.
	costsOut, err := par.Map(cfg.Workers, len(rules), func(i int) (float64, error) {
		return meanCost(seqConfig(cfg), core.RandFactory(rules[i].opts), tr, cfg.Seed, reps)
	})
	if err != nil {
		return nil, err
	}
	for i, tc := range rules {
		tab.AddRow(tc.name, costsOut[i], costsOut[i]/opt)
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}
