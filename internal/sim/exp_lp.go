package sim

import (
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/lp"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "lpgap",
		Title:      "LP relaxation of Section 1.1: integrality gap and certified ratios",
		Reproduces: "Section 1.1 (primal/dual LP) — certified competitive ratios via true LP lower bounds",
		Run:        runLPGap,
	})
}

// runLPGap solves the Section 1.1 LP relaxation exactly on small random
// instances (complete configuration family), sandwiching
//
//	γ·dual(PD) ≤ LP ≤ exact OPT ≤ cost(PD)
//
// and reporting the integrality gap and the *certified* competitive ratio
// cost(PD)/LP — unlike proxy-based ratios this one cannot understate.
func runLPGap(cfg Config) (*Result, error) {
	trials := pickInt(cfg, 4, 15)

	tab := report.NewTable("lpgap: per-instance sandwich on small random instances",
		"trial", "LP", "exact OPT", "gap OPT/LP", "pd cost", "pd/LP (certified)", "gamma*dual (≤LP)")
	tab.Note = "complete configuration family: the LP value is a true lower bound on OPT"

	// Each trial generates its instance from its own sub-seeded rng and
	// solves LP + exact + PD independently, so trials fan out across
	// workers; rows merge back in trial order.
	type lpRow struct{ lpVal, exact, gap, pdCost, cert, gammaDual float64 }
	rows, err := par.Map(cfg.Workers, trials, func(trial int) (lpRow, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*104729))
		u := 2 + rng.Intn(3)
		in := &instance.Instance{
			Space: metric.RandomLine(rng, 2+rng.Intn(3), 10),
			Costs: cost.PowerLaw(u, 1, 1+rng.Float64()),
		}
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(in.Space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}

		relax, err := lp.OMFLPRelaxation(in)
		if err != nil {
			return lpRow{}, err
		}
		exact := baseline.ExactSmall(in, 4)

		pd := core.NewPDOMFLP(in.Space, in.Costs, core.Options{})
		for _, r := range in.Requests {
			pd.Serve(r)
		}
		if err := pd.Solution().Verify(in); err != nil {
			return lpRow{}, err
		}
		pdCost := pd.Solution().Cost(in)
		return lpRow{
			lpVal:     relax.Value,
			exact:     exact.Cost,
			gap:       lp.IntegralityGap(exact.Cost, relax.Value),
			pdCost:    pdCost,
			cert:      pdCost / relax.Value,
			gammaDual: core.Gamma(u, n) * pd.DualTotal(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var gaps, certified []float64
	for trial, r := range rows {
		tab.AddRow(trial, r.lpVal, r.exact, r.gap, r.pdCost, r.cert, r.gammaDual)
		gaps = append(gaps, r.gap)
		certified = append(certified, r.cert)
	}

	sum := report.NewTable("lpgap: summary over trials",
		"quantity", "mean", "max")
	gs := stats.Summarize(gaps)
	cs := stats.Summarize(certified)
	sum.AddRow("integrality gap OPT/LP", gs.Mean, gs.Max)
	sum.AddRow("certified ratio pd/LP", cs.Mean, cs.Max)

	// RAND too, on one fixed instance, to show the certified ratio of the
	// randomized algorithm.
	inFixed := &instance.Instance{
		Space: metric.NewLine([]float64{0, 2, 5, 9}),
		Costs: cost.PowerLaw(3, 1, 1.5),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0, 1)},
			{Point: 1, Demands: commodity.New(1)},
			{Point: 2, Demands: commodity.New(2)},
			{Point: 3, Demands: commodity.New(0, 2)},
		},
	}
	relax, err := lp.OMFLPRelaxation(inFixed)
	if err != nil {
		return nil, err
	}
	reps := pickInt(cfg, 5, 20)
	raCost, err := par.MeanOf(cfg.Workers, reps, func(i int) (float64, error) {
		_, c, err := online.Run(core.RandFactory(core.Options{}), inFixed, cfg.Seed+int64(i), true)
		return c, err
	})
	if err != nil {
		return nil, err
	}
	sum.AddRow("rand/LP on fixed instance", raCost/relax.Value, raCost/relax.Value)

	return &Result{Tables: []*report.Table{tab, sum}}, nil
}
