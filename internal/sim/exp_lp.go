package sim

import (
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/lp"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "lpgap",
		Title:      "LP relaxation of Section 1.1: integrality gap and certified ratios",
		Reproduces: "Section 1.1 (primal/dual LP) — certified competitive ratios via true LP lower bounds",
		Run:        runLPGap,
	})
}

// runLPGap solves the Section 1.1 LP relaxation exactly on small random
// instances (complete configuration family), sandwiching
//
//	γ·dual(PD) ≤ LP ≤ exact OPT ≤ cost(PD)
//
// and reporting the integrality gap and the *certified* competitive ratio
// cost(PD)/LP — unlike proxy-based ratios this one cannot understate.
func runLPGap(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	trials := pickInt(cfg, 4, 15)

	tab := report.NewTable("lpgap: per-instance sandwich on small random instances",
		"trial", "LP", "exact OPT", "gap OPT/LP", "pd cost", "pd/LP (certified)", "gamma*dual (≤LP)")
	tab.Note = "complete configuration family: the LP value is a true lower bound on OPT"

	var gaps, certified []float64
	for trial := 0; trial < trials; trial++ {
		u := 2 + rng.Intn(3)
		in := &instance.Instance{
			Space: metric.RandomLine(rng, 2+rng.Intn(3), 10),
			Costs: cost.PowerLaw(u, 1, 1+rng.Float64()),
		}
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, instance.Request{
				Point:   rng.Intn(in.Space.Len()),
				Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
			})
		}

		relax, err := lp.OMFLPRelaxation(in)
		if err != nil {
			return nil, err
		}
		exact := baseline.ExactSmall(in, 4)

		pd := core.NewPDOMFLP(in.Space, in.Costs, core.Options{})
		for _, r := range in.Requests {
			pd.Serve(r)
		}
		if err := pd.Solution().Verify(in); err != nil {
			return nil, err
		}
		pdCost := pd.Solution().Cost(in)
		gamma := core.Gamma(u, n)
		gammaDual := gamma * pd.DualTotal()

		gap := lp.IntegralityGap(exact.Cost, relax.Value)
		cert := pdCost / relax.Value
		tab.AddRow(trial, relax.Value, exact.Cost, gap, pdCost, cert, gammaDual)
		gaps = append(gaps, gap)
		certified = append(certified, cert)
	}

	sum := report.NewTable("lpgap: summary over trials",
		"quantity", "mean", "max")
	gs := stats.Summarize(gaps)
	cs := stats.Summarize(certified)
	sum.AddRow("integrality gap OPT/LP", gs.Mean, gs.Max)
	sum.AddRow("certified ratio pd/LP", cs.Mean, cs.Max)

	// RAND too, on one fixed instance, to show the certified ratio of the
	// randomized algorithm.
	inFixed := &instance.Instance{
		Space: metric.NewLine([]float64{0, 2, 5, 9}),
		Costs: cost.PowerLaw(3, 1, 1.5),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0, 1)},
			{Point: 1, Demands: commodity.New(1)},
			{Point: 2, Demands: commodity.New(2)},
			{Point: 3, Demands: commodity.New(0, 2)},
		},
	}
	relax, err := lp.OMFLPRelaxation(inFixed)
	if err != nil {
		return nil, err
	}
	raCost := 0.0
	reps := pickInt(cfg, 5, 20)
	for i := 0; i < reps; i++ {
		_, c, err := online.Run(core.RandFactory(core.Options{}), inFixed, cfg.Seed+int64(i), true)
		if err != nil {
			return nil, err
		}
		raCost += c
	}
	raCost /= float64(reps)
	sum.AddRow("rand/LP on fixed instance", raCost/relax.Value, raCost/relax.Value)

	return &Result{Tables: []*report.Table{tab, sum}}, nil
}
