package sim

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "perf",
		Title:      "Throughput: arrivals/second per algorithm across n and |S|, plus the PD serve-loop ladder (event-driven vs incremental vs naive)",
		Reproduces: "systems evaluation of the implementations (no paper counterpart — the paper is theory-only)",
		Run:        runPerf,
		WallClock:  true,
	})
}

// algoBenchRow is one machine-readable throughput measurement of one online
// algorithm on one workload size. Written to BENCH_algos.json when
// Config.BenchDir is set, so per-algorithm serve-throughput regressions —
// e.g. nearest-facility queries degrading with |S| — are machine-checkable.
type algoBenchRow struct {
	N              int     `json:"n"`
	Universe       int     `json:"universe"`
	Points         int     `json:"points"`
	Algorithm      string  `json:"algorithm"`
	ArrivalsPerSec float64 `json:"arrivals_per_sec"`
	Seconds        float64 `json:"seconds"`
}

type algoBenchFile struct {
	Description string         `json:"description"`
	Seed        int64          `json:"seed"`
	Quick       bool           `json:"quick"`
	Rows        []algoBenchRow `json:"rows"`
}

// pdBenchRow is one machine-readable measurement of the PD-OMFLP serve
// loop across its three implementations on the same workload: the
// event-driven loop (per-arrival threshold precomputation, the production
// path), the pre-refactor incremental loop (incremental bids, candidate
// rescans on every event) and the naive reference (bids rebuilt from the
// full history every arrival). All three produce byte-identical solutions —
// runPDBench asserts it — so the columns measure pure serve-loop cost.
// Written to BENCH_pd.json when Config.BenchDir is set; the CI
// benchmark-regression job gates on event_driven beating incremental.
type pdBenchRow struct {
	N                         int     `json:"n"`
	Universe                  int     `json:"universe"`
	Points                    int     `json:"points"`
	EventPerSec               float64 `json:"event_driven_arrivals_per_sec"`
	IncrementalPerSec         float64 `json:"incremental_arrivals_per_sec"`
	NaivePerSec               float64 `json:"naive_arrivals_per_sec"`
	SpeedupEventVsIncremental float64 `json:"speedup_event_vs_incremental"`
	Speedup                   float64 `json:"speedup"` // incremental vs naive (legacy column)
	EventSeconds              float64 `json:"event_driven_seconds"`
	IncrementalSeconds        float64 `json:"incremental_seconds"`
	NaiveSeconds              float64 `json:"naive_seconds"`
}

type pdBenchFile struct {
	Description string       `json:"description"`
	Seed        int64        `json:"seed"`
	Quick       bool         `json:"quick"`
	Rows        []pdBenchRow `json:"rows"`
}

// runPerf measures wall-clock throughput of every online algorithm across
// problem sizes, and of PD-OMFLP's incremental bid accounting against the
// naive reference rebuild. The timings are machine-dependent (unlike every
// other experiment's tables, which are bit-reproducible under a fixed seed);
// the purpose is to document the practical cost of the algorithms — the
// paper's remark that RAND-OMFLP "is much more efficient to implement"
// (Section 4) becomes measurable here, as does the gap between the
// event-driven serve loop (O(k·|cands|) once per arrival), the pre-refactor
// incremental loop (O(events·k·|cands|)) and the naive reference
// (O(history·|cands|)) in PD.
//
// Unlike the other experiments, the measurement loops deliberately ignore
// Config.Workers: concurrent timing runs would contend for cores and skew
// the numbers.
func runPerf(cfg Config) (*Result, error) {
	factories := []online.Factory{
		core.PDFactory(core.Options{}),
		core.RandFactory(core.Options{}),
		baseline.PerCommodityPDFactory(nil),
		baseline.NoPredictionFactory(nil),
	}

	type dims struct{ n, u, points int }
	var sweeps []dims
	if cfg.Quick {
		sweeps = []dims{{50, 8, 15}, {100, 8, 15}}
	} else {
		sweeps = []dims{
			{100, 8, 25}, {200, 8, 25}, {400, 8, 25}, // n sweep
			{200, 4, 25}, {200, 16, 25}, {200, 64, 25}, // |S| sweep
		}
	}

	tab := report.NewTable("perf: arrivals per second (higher is better)",
		"n", "|S|", "points", "pd", "rand", "per-commodity", "no-prediction")
	tab.Note = "wall-clock measurements — machine-dependent, not seed-reproducible"
	var algoRows []algoBenchRow
	for di, d := range sweeps {
		// Each sweep row owns its rng stream, so the workload of row i is
		// independent of how many rows ran before it.
		rng := workload.Rng(cfg.Seed, int64(di))
		space := metric.RandomEuclidean(rng, d.points, 2, 100)
		tr := workload.Uniform(rng, space, cost.PowerLaw(d.u, 1, 2), d.n, d.u/2+1)
		row := []interface{}{d.n, d.u, d.points}
		for _, f := range factories {
			alg := f.New(tr.Instance.Space, tr.Instance.Costs, cfg.Seed)
			start := time.Now() //omflp:wallclock — throughput benchmark; readings feed BENCH_pd.json, never the solution tables
			for _, r := range tr.Instance.Requests {
				alg.Serve(r)
			}
			elapsed := time.Since(start) //omflp:wallclock — ditto
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			row = append(row, float64(d.n)/elapsed.Seconds())
			algoRows = append(algoRows, algoBenchRow{
				N:              d.n,
				Universe:       d.u,
				Points:         d.points,
				Algorithm:      f.Name,
				ArrivalsPerSec: float64(d.n) / elapsed.Seconds(),
				Seconds:        elapsed.Seconds(),
			})
		}
		tab.AddRow(row...)
	}

	// PD incremental vs naive bid accounting: same sequence through both
	// implementations. The naive path is O(history × candidates) per
	// arrival, so the gap widens with n.
	pdTab, bench := runPDBench(cfg)
	if cfg.BenchDir != "" {
		if err := writePDBench(cfg, bench); err != nil {
			return nil, err
		}
		if err := writeAlgoBench(cfg, algoRows); err != nil {
			return nil, err
		}
	}

	return &Result{Tables: []*report.Table{tab, pdTab}}, nil
}

func writeAlgoBench(cfg Config, rows []algoBenchRow) error {
	if err := os.MkdirAll(cfg.BenchDir, 0o755); err != nil {
		return err
	}
	out := algoBenchFile{
		Description: "serve throughput (arrivals/s) of every online algorithm across n and |S| sweeps",
		Seed:        cfg.Seed,
		Quick:       cfg.Quick,
		Rows:        rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(cfg.BenchDir, "BENCH_algos.json"), append(data, '\n'), 0o644)
}

func runPDBench(cfg Config) (*report.Table, []pdBenchRow) {
	sizes := pick(cfg, []int{200, 400}, []int{500, 1000, 2000})
	const u, points = 8, 25

	tab := report.NewTable("perf: PD-OMFLP serve loop, event-driven vs incremental vs naive",
		"n", "|S|", "points", "event-driven arrivals/s", "incremental arrivals/s", "naive arrivals/s", "event/incremental")
	tab.Note = "wall-clock; incremental = pre-refactor per-event candidate rescans, naive additionally rebuilds bids from the full history"

	var rows []pdBenchRow
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed))
		space := metric.RandomEuclidean(rng, points, 2, 100)
		tr := workload.Uniform(rng, space, cost.PowerLaw(u, 1, 2), n, u/2+1)

		timeRun := func(alg online.Algorithm) (float64, *core.PDOMFLP) {
			start := time.Now() //omflp:wallclock — throughput benchmark; readings feed BENCH_pd.json, never the solution tables
			for _, r := range tr.Instance.Requests {
				alg.Serve(r)
			}
			elapsed := time.Since(start) //omflp:wallclock — ditto
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			return elapsed.Seconds(), alg.(*core.PDOMFLP)
		}
		eventSec, eventPD := timeRun(core.NewPDOMFLP(tr.Instance.Space, tr.Instance.Costs, core.Options{}))
		incSec, incPD := timeRun(core.NewPDLoopReference(tr.Instance.Space, tr.Instance.Costs, core.Options{}))
		naiveSec, naivePD := timeRun(core.NewPDReference(tr.Instance.Space, tr.Instance.Costs, core.Options{}))

		// The three loops must be implementations of the same algorithm,
		// not three algorithms: identical facilities and assignments.
		assertSameSolution(eventPD, incPD, "event-driven vs incremental")
		assertSameSolution(eventPD, naivePD, "event-driven vs naive")

		row := pdBenchRow{
			N:                         n,
			Universe:                  u,
			Points:                    points,
			EventPerSec:               float64(n) / eventSec,
			IncrementalPerSec:         float64(n) / incSec,
			NaivePerSec:               float64(n) / naiveSec,
			SpeedupEventVsIncremental: incSec / eventSec,
			Speedup:                   naiveSec / incSec,
			EventSeconds:              eventSec,
			IncrementalSeconds:        incSec,
			NaiveSeconds:              naiveSec,
		}
		rows = append(rows, row)
		tab.AddRow(n, u, points, row.EventPerSec, row.IncrementalPerSec, row.NaivePerSec, row.SpeedupEventVsIncremental)
	}
	return tab, rows
}

// assertSameSolution panics when two PD serve loops disagree on any opened
// facility or assignment link — the benchmark would otherwise be comparing
// different algorithms and its speedups would be meaningless.
func assertSameSolution(a, b *core.PDOMFLP, label string) {
	sa, sb := a.Solution(), b.Solution()
	if len(sa.Facilities) != len(sb.Facilities) || len(sa.Assign) != len(sb.Assign) {
		panic("perf: PD serve loops diverged (" + label + ")")
	}
	for i := range sa.Facilities {
		if sa.Facilities[i].Point != sb.Facilities[i].Point || !sa.Facilities[i].Config.Equal(sb.Facilities[i].Config) {
			panic("perf: PD serve loops diverged (" + label + ")")
		}
	}
	for i := range sa.Assign {
		if len(sa.Assign[i]) != len(sb.Assign[i]) {
			panic("perf: PD serve loops diverged (" + label + ")")
		}
		for j := range sa.Assign[i] {
			if sa.Assign[i][j] != sb.Assign[i][j] {
				panic("perf: PD serve loops diverged (" + label + ")")
			}
		}
	}
}

func writePDBench(cfg Config, rows []pdBenchRow) error {
	if err := os.MkdirAll(cfg.BenchDir, 0o755); err != nil {
		return err
	}
	out := pdBenchFile{
		Description: "PD-OMFLP serve throughput: event-driven loop vs pre-refactor incremental loop vs naive per-arrival rebuild (byte-identical solutions)",
		Seed:        cfg.Seed,
		Quick:       cfg.Quick,
		Rows:        rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(cfg.BenchDir, "BENCH_pd.json"), append(data, '\n'), 0o644)
}
