package sim

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "perf",
		Title:      "Throughput: arrivals/second per algorithm across n and |S|, plus incremental vs naive PD bids",
		Reproduces: "systems evaluation of the implementations (no paper counterpart — the paper is theory-only)",
		Run:        runPerf,
		WallClock:  true,
	})
}

// algoBenchRow is one machine-readable throughput measurement of one online
// algorithm on one workload size. Written to BENCH_algos.json when
// Config.BenchDir is set, so per-algorithm serve-throughput regressions —
// e.g. nearest-facility queries degrading with |S| — are machine-checkable.
type algoBenchRow struct {
	N              int     `json:"n"`
	Universe       int     `json:"universe"`
	Points         int     `json:"points"`
	Algorithm      string  `json:"algorithm"`
	ArrivalsPerSec float64 `json:"arrivals_per_sec"`
	Seconds        float64 `json:"seconds"`
}

type algoBenchFile struct {
	Description string         `json:"description"`
	Seed        int64          `json:"seed"`
	Quick       bool           `json:"quick"`
	Rows        []algoBenchRow `json:"rows"`
}

// pdBenchRow is one machine-readable measurement of the PD-OMFLP serve loop:
// the incremental bid accounting versus the naive per-arrival recomputation
// on the same workload. Written to BENCH_pd.json when Config.BenchDir is set.
type pdBenchRow struct {
	N                  int     `json:"n"`
	Universe           int     `json:"universe"`
	Points             int     `json:"points"`
	IncrementalPerSec  float64 `json:"incremental_arrivals_per_sec"`
	NaivePerSec        float64 `json:"naive_arrivals_per_sec"`
	Speedup            float64 `json:"speedup"`
	IncrementalSeconds float64 `json:"incremental_seconds"`
	NaiveSeconds       float64 `json:"naive_seconds"`
}

type pdBenchFile struct {
	Description string       `json:"description"`
	Seed        int64        `json:"seed"`
	Quick       bool         `json:"quick"`
	Rows        []pdBenchRow `json:"rows"`
}

// runPerf measures wall-clock throughput of every online algorithm across
// problem sizes, and of PD-OMFLP's incremental bid accounting against the
// naive reference rebuild. The timings are machine-dependent (unlike every
// other experiment's tables, which are bit-reproducible under a fixed seed);
// the purpose is to document the practical cost of the algorithms — the
// paper's remark that RAND-OMFLP "is much more efficient to implement"
// (Section 4) becomes measurable here, as does the asymptotic gap between
// O(k·|cands|) and O(history·|cands|) per arrival in PD.
//
// Unlike the other experiments, the measurement loops deliberately ignore
// Config.Workers: concurrent timing runs would contend for cores and skew
// the numbers.
func runPerf(cfg Config) (*Result, error) {
	factories := []online.Factory{
		core.PDFactory(core.Options{}),
		core.RandFactory(core.Options{}),
		baseline.PerCommodityPDFactory(nil),
		baseline.NoPredictionFactory(nil),
	}

	type dims struct{ n, u, points int }
	var sweeps []dims
	if cfg.Quick {
		sweeps = []dims{{50, 8, 15}, {100, 8, 15}}
	} else {
		sweeps = []dims{
			{100, 8, 25}, {200, 8, 25}, {400, 8, 25}, // n sweep
			{200, 4, 25}, {200, 16, 25}, {200, 64, 25}, // |S| sweep
		}
	}

	tab := report.NewTable("perf: arrivals per second (higher is better)",
		"n", "|S|", "points", "pd", "rand", "per-commodity", "no-prediction")
	tab.Note = "wall-clock measurements — machine-dependent, not seed-reproducible"
	var algoRows []algoBenchRow
	for di, d := range sweeps {
		// Each sweep row owns its rng stream, so the workload of row i is
		// independent of how many rows ran before it.
		rng := workload.Rng(cfg.Seed, int64(di))
		space := metric.RandomEuclidean(rng, d.points, 2, 100)
		tr := workload.Uniform(rng, space, cost.PowerLaw(d.u, 1, 2), d.n, d.u/2+1)
		row := []interface{}{d.n, d.u, d.points}
		for _, f := range factories {
			alg := f.New(tr.Instance.Space, tr.Instance.Costs, cfg.Seed)
			start := time.Now()
			for _, r := range tr.Instance.Requests {
				alg.Serve(r)
			}
			elapsed := time.Since(start)
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			row = append(row, float64(d.n)/elapsed.Seconds())
			algoRows = append(algoRows, algoBenchRow{
				N:              d.n,
				Universe:       d.u,
				Points:         d.points,
				Algorithm:      f.Name,
				ArrivalsPerSec: float64(d.n) / elapsed.Seconds(),
				Seconds:        elapsed.Seconds(),
			})
		}
		tab.AddRow(row...)
	}

	// PD incremental vs naive bid accounting: same sequence through both
	// implementations. The naive path is O(history × candidates) per
	// arrival, so the gap widens with n.
	pdTab, bench := runPDBench(cfg)
	if cfg.BenchDir != "" {
		if err := writePDBench(cfg, bench); err != nil {
			return nil, err
		}
		if err := writeAlgoBench(cfg, algoRows); err != nil {
			return nil, err
		}
	}

	return &Result{Tables: []*report.Table{tab, pdTab}}, nil
}

func writeAlgoBench(cfg Config, rows []algoBenchRow) error {
	if err := os.MkdirAll(cfg.BenchDir, 0o755); err != nil {
		return err
	}
	out := algoBenchFile{
		Description: "serve throughput (arrivals/s) of every online algorithm across n and |S| sweeps",
		Seed:        cfg.Seed,
		Quick:       cfg.Quick,
		Rows:        rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(cfg.BenchDir, "BENCH_algos.json"), append(data, '\n'), 0o644)
}

func runPDBench(cfg Config) (*report.Table, []pdBenchRow) {
	sizes := pick(cfg, []int{200, 400}, []int{500, 1000, 2000})
	const u, points = 8, 25

	tab := report.NewTable("perf: PD-OMFLP serve loop, incremental vs naive bid accounting",
		"n", "|S|", "points", "incremental arrivals/s", "naive arrivals/s", "speedup")
	tab.Note = "wall-clock; the naive reference rebuilds bids from the full history every arrival"

	var rows []pdBenchRow
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed))
		space := metric.RandomEuclidean(rng, points, 2, 100)
		tr := workload.Uniform(rng, space, cost.PowerLaw(u, 1, 2), n, u/2+1)

		timeRun := func(alg online.Algorithm) float64 {
			start := time.Now()
			for _, r := range tr.Instance.Requests {
				alg.Serve(r)
			}
			elapsed := time.Since(start)
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			return elapsed.Seconds()
		}
		incSec := timeRun(core.NewPDOMFLP(tr.Instance.Space, tr.Instance.Costs, core.Options{}))
		naiveSec := timeRun(core.NewPDReference(tr.Instance.Space, tr.Instance.Costs, core.Options{}))

		row := pdBenchRow{
			N:                  n,
			Universe:           u,
			Points:             points,
			IncrementalPerSec:  float64(n) / incSec,
			NaivePerSec:        float64(n) / naiveSec,
			Speedup:            naiveSec / incSec,
			IncrementalSeconds: incSec,
			NaiveSeconds:       naiveSec,
		}
		rows = append(rows, row)
		tab.AddRow(n, u, points, row.IncrementalPerSec, row.NaivePerSec, row.Speedup)
	}
	return tab, rows
}

func writePDBench(cfg Config, rows []pdBenchRow) error {
	if err := os.MkdirAll(cfg.BenchDir, 0o755); err != nil {
		return err
	}
	out := pdBenchFile{
		Description: "PD-OMFLP serve throughput: incremental bid accounting vs naive per-arrival rebuild",
		Seed:        cfg.Seed,
		Quick:       cfg.Quick,
		Rows:        rows,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(cfg.BenchDir, "BENCH_pd.json"), append(data, '\n'), 0o644)
}
