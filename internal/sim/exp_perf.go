package sim

import (
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "perf",
		Title:      "Throughput: arrivals/second per algorithm across n and |S|",
		Reproduces: "systems evaluation of the implementations (no paper counterpart — the paper is theory-only)",
		Run:        runPerf,
	})
}

// runPerf measures wall-clock throughput of every online algorithm across
// problem sizes. The timings are machine-dependent (unlike every other
// experiment's tables, which are bit-reproducible under a fixed seed); the
// purpose is to document the practical cost of the algorithms — the paper's
// remark that RAND-OMFLP "is much more efficient to implement" (Section 4)
// becomes measurable here.
func runPerf(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	factories := []online.Factory{
		core.PDFactory(core.Options{}),
		core.RandFactory(core.Options{}),
		baseline.PerCommodityPDFactory(nil),
		baseline.NoPredictionFactory(nil),
	}

	type dims struct{ n, u, points int }
	var sweeps []dims
	if cfg.Quick {
		sweeps = []dims{{50, 8, 15}, {100, 8, 15}}
	} else {
		sweeps = []dims{
			{100, 8, 25}, {200, 8, 25}, {400, 8, 25}, // n sweep
			{200, 4, 25}, {200, 16, 25}, {200, 64, 25}, // |S| sweep
		}
	}

	tab := report.NewTable("perf: arrivals per second (higher is better)",
		"n", "|S|", "points", "pd", "rand", "per-commodity", "no-prediction")
	tab.Note = "wall-clock measurements — machine-dependent, not seed-reproducible"
	for _, d := range sweeps {
		space := metric.RandomEuclidean(rng, d.points, 2, 100)
		tr := workload.Uniform(rng, space, cost.PowerLaw(d.u, 1, 2), d.n, d.u/2+1)
		row := []interface{}{d.n, d.u, d.points}
		for _, f := range factories {
			alg := f.New(tr.Instance.Space, tr.Instance.Costs, cfg.Seed)
			start := time.Now()
			for _, r := range tr.Instance.Requests {
				alg.Serve(r)
			}
			elapsed := time.Since(start)
			if elapsed <= 0 {
				elapsed = time.Nanosecond
			}
			row = append(row, float64(d.n)/elapsed.Seconds())
		}
		tab.AddRow(row...)
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}
