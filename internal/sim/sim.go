// Package sim is the experiment harness: one registered experiment per paper
// artifact (figure, theorem, lemma) plus the ablations called out in
// DESIGN.md. Each experiment is deterministic given Config.Seed and shrinks
// to a fast smoke configuration with Config.Quick (used by tests and
// benchmarks).
package sim

import (
	"fmt"
	"sort"

	"repro/internal/report"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives every random choice (workloads, adversaries, algorithm
	// coins). Two runs with equal Seed and Quick produce identical tables
	// for every Workers value: repetitions derive per-rep sub-seeds and the
	// harness merges their results in index order.
	Seed int64
	// Quick shrinks problem sizes and repetition counts for smoke runs.
	Quick bool
	// Workers caps the goroutines used to fan out independent repetitions
	// and per-row measurements. 0 (the default) means GOMAXPROCS; 1 forces
	// a fully sequential run. Output is byte-identical across values
	// (except wall-clock timing experiments, which are machine-dependent
	// by nature; see Experiment.WallClock).
	Workers int
	// BenchDir, when non-empty, lets experiments write machine-readable
	// benchmark artifacts there (the perf experiment writes BENCH_pd.json).
	BenchDir string
}

// Result bundles an experiment's output tables and charts.
type Result struct {
	Tables []*report.Table
	Charts []ChartSpec
}

// ChartSpec is a renderable ASCII chart.
type ChartSpec struct {
	Title  string
	Series []report.Series
}

// Experiment is a registered, runnable reproduction artifact.
type Experiment struct {
	ID         string
	Title      string
	Reproduces string // which paper artifact this regenerates
	Run        func(cfg Config) (*Result, error)
	// WallClock marks experiments whose tables contain wall-clock timings:
	// their values are machine-dependent and exempt from the byte-identical
	// reproducibility contract (table shape is still deterministic).
	WallClock bool
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("sim: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// IDs returns the registered experiment IDs sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunByID runs one experiment.
func RunByID(id string, cfg Config) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("sim: unknown experiment %q (have %v)", id, IDs())
	}
	return e.Run(cfg)
}

// pick returns quick for Quick configs and full otherwise — a tiny helper
// used throughout the experiment definitions.
func pick(cfg Config, quick, full []int) []int {
	if cfg.Quick {
		return quick
	}
	return full
}

func pickInt(cfg Config, quick, full int) int {
	if cfg.Quick {
		return quick
	}
	return full
}
