package sim

import (
	"math/rand"

	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/covering"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "lem12",
		Title:      "c-ordered covering: achieved weight vs the 2c·H_n bound",
		Reproduces: "Lemma 12 (constructive covering used in the dual feasibility proofs)",
		Run:        runLem12,
	})
	register(Experiment{
		ID:         "dual",
		Title:      "γ-scaled dual feasibility and Corollary 8 cost bound",
		Reproduces: "Corollaries 8 and 17 (primal-dual accounting of PD-OMFLP)",
		Run:        runDual,
	})
}

func runLem12(cfg Config) (*Result, error) {
	sizes := pick(cfg, []int{10, 50}, []int{10, 50, 200, 1000})
	trials := pickInt(cfg, 5, 25)

	tab := report.NewTable("lem12: covering weight vs bound",
		"n", "family", "weight", "2c*H_n", "utilization", "naive weight")
	tab.Note = "Lemma 12: the constructive covering never exceeds 2c·H_n"
	const c = 1.0
	type trialOut struct{ util, weight, naive float64 }
	for _, n := range sizes {
		// Random instances: report the worst utilization over trials. Each
		// trial derives its own rng from (seed, n, trial), so the fan-out
		// is order-independent.
		outs, err := par.Map(cfg.Workers, trials, func(t int) (trialOut, error) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n)*1000003 + int64(t)*7919))
			in := covering.RandomInstance(rng, n, c, rng.Float64()*0.4)
			res := in.Cover()
			return trialOut{
				util:   res.Weight / in.Bound(),
				weight: res.Weight,
				naive:  in.GreedyNaive().Weight,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		worstU, worstW, worstNaive := 0.0, 0.0, 0.0
		for _, o := range outs {
			if o.util > worstU {
				worstU, worstW, worstNaive = o.util, o.weight, o.naive
			}
		}
		inR := covering.RandomInstance(rand.New(rand.NewSource(cfg.Seed+int64(n)*1000003-1)), n, c, 0.2)
		tab.AddRow(n, "random(worst)", worstW, inR.Bound(), worstU, worstNaive)

		chain := covering.ChainInstance(n, c)
		cres := chain.Cover()
		tab.AddRow(n, "chain", cres.Weight, chain.Bound(), cres.Weight/chain.Bound(),
			chain.GreedyNaive().Weight)

		wc := covering.WorstCaseInstance(n, c)
		wres := wc.Cover()
		tab.AddRow(n, "one-block", wres.Weight, wc.Bound(), wres.Weight/wc.Bound(),
			wc.GreedyNaive().Weight)
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}

func runDual(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tab := report.NewTable("dual: PD-OMFLP primal-dual accounting",
		"workload", "cost(ALG)", "dual total", "cost/dual (≤3)", "gamma", "max violation (≤0)", "constraints")
	tab.Note = "Corollary 8: cost ≤ 3·Σ duals; Corollary 17: γ-scaled duals are dual-feasible"

	type wl struct {
		name string
		mk   func() *instance.Instance
		u, n int
	}
	u := pickInt(cfg, 4, 6)
	n := pickInt(cfg, 15, 60)
	workloads := []wl{
		{
			name: "uniform-euclidean",
			mk: func() *instance.Instance {
				space := metric.RandomEuclidean(rng, pickInt(cfg, 6, 12), 2, 20)
				return workload.Uniform(rng, space, cost.PowerLaw(u, 1, 1.5), n, u).Instance
			},
		},
		{
			name: "zipf-line",
			mk: func() *instance.Instance {
				space := metric.RandomLine(rng, pickInt(cfg, 6, 12), 30)
				return workload.Zipf(rng, space, cost.PowerLaw(u, 0.8, 1.5), n, u/2+1, 1.3).Instance
			},
		},
		{
			name: "single-point-singles",
			mk: func() *instance.Instance {
				return workload.SinglePointSingles(rng, cost.CeilSqrt(16), 16).Instance
			},
		},
	}

	// Instances come out of the shared rng sequentially (the workload
	// streams are order-dependent); the PD runs and dual checks fan out.
	instances := make([]*instance.Instance, len(workloads))
	for wi, w := range workloads {
		instances[wi] = w.mk()
	}
	type dualRow struct {
		algCost, dual, gamma, maxViolation float64
		checked                            int
	}
	rows, err := par.Map(cfg.Workers, len(workloads), func(wi int) (dualRow, error) {
		in := instances[wi]
		pd := core.NewPDOMFLP(in.Space, in.Costs, core.Options{})
		for _, r := range in.Requests {
			pd.Serve(r)
		}
		sol := pd.Solution()
		if err := sol.Verify(in); err != nil {
			return dualRow{}, err
		}
		gamma := core.Gamma(in.Universe(), len(in.Requests))
		sampler := rand.New(rand.NewSource(cfg.Seed + int64(wi)*104729))
		rep := pd.CheckScaledDuals(gamma, 8, pickInt(cfg, 20, 100), sampler)
		return dualRow{
			algCost:      sol.Cost(in),
			dual:         pd.DualTotal(),
			gamma:        gamma,
			maxViolation: rep.MaxViolation,
			checked:      rep.Checked,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range workloads {
		r := rows[wi]
		tab.AddRow(w.name, r.algCost, r.dual, r.algCost/r.dual, r.gamma, r.maxViolation, r.checked)
	}

	// Show the sandwich OPT ≥ γ·dual explicitly on a tiny instance where
	// exact OPT is computable.
	tiny := &instance.Instance{
		Space: metric.NewLine([]float64{0, 1, 4}),
		Costs: cost.PowerLaw(3, 1, 1),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0, 1)},
			{Point: 1, Demands: commodity.New(1, 2)},
			{Point: 2, Demands: commodity.New(0)},
		},
	}
	pd := core.NewPDOMFLP(tiny.Space, tiny.Costs, core.Options{})
	for _, r := range tiny.Requests {
		pd.Serve(r)
	}
	gamma := core.Gamma(3, 3)
	sand := report.NewTable("dual: weak-duality sandwich on a tiny exact instance",
		"gamma*dual (≤ OPT)", "exact OPT", "cost(ALG)", "ratio")
	// Local import cycle avoidance: exact solver lives in baseline.
	exact := exactTinyOPT(tiny)
	sand.AddRow(gamma*pd.DualTotal(), exact, pd.Solution().Cost(tiny), pd.Solution().Cost(tiny)/exact)
	return &Result{Tables: []*report.Table{tab, sand}}, nil
}
