package sim

import (
	"math/rand"

	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/covering"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "lem12",
		Title:      "c-ordered covering: achieved weight vs the 2c·H_n bound",
		Reproduces: "Lemma 12 (constructive covering used in the dual feasibility proofs)",
		Run:        runLem12,
	})
	register(Experiment{
		ID:         "dual",
		Title:      "γ-scaled dual feasibility and Corollary 8 cost bound",
		Reproduces: "Corollaries 8 and 17 (primal-dual accounting of PD-OMFLP)",
		Run:        runDual,
	})
}

func runLem12(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := pick(cfg, []int{10, 50}, []int{10, 50, 200, 1000})
	trials := pickInt(cfg, 5, 25)

	tab := report.NewTable("lem12: covering weight vs bound",
		"n", "family", "weight", "2c*H_n", "utilization", "naive weight")
	tab.Note = "Lemma 12: the constructive covering never exceeds 2c·H_n"
	const c = 1.0
	for _, n := range sizes {
		// Random instances: report the worst utilization over trials.
		worstU, worstW, worstNaive := 0.0, 0.0, 0.0
		for t := 0; t < trials; t++ {
			in := covering.RandomInstance(rng, n, c, rng.Float64()*0.4)
			res := in.Cover()
			if util := res.Weight / in.Bound(); util > worstU {
				worstU, worstW = util, res.Weight
				worstNaive = in.GreedyNaive().Weight
			}
		}
		inR := covering.RandomInstance(rng, n, c, 0.2)
		tab.AddRow(n, "random(worst)", worstW, inR.Bound(), worstU, worstNaive)

		chain := covering.ChainInstance(n, c)
		cres := chain.Cover()
		tab.AddRow(n, "chain", cres.Weight, chain.Bound(), cres.Weight/chain.Bound(),
			chain.GreedyNaive().Weight)

		wc := covering.WorstCaseInstance(n, c)
		wres := wc.Cover()
		tab.AddRow(n, "one-block", wres.Weight, wc.Bound(), wres.Weight/wc.Bound(),
			wc.GreedyNaive().Weight)
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}

func runDual(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tab := report.NewTable("dual: PD-OMFLP primal-dual accounting",
		"workload", "cost(ALG)", "dual total", "cost/dual (≤3)", "gamma", "max violation (≤0)", "constraints")
	tab.Note = "Corollary 8: cost ≤ 3·Σ duals; Corollary 17: γ-scaled duals are dual-feasible"

	type wl struct {
		name string
		mk   func() *instance.Instance
		u, n int
	}
	u := pickInt(cfg, 4, 6)
	n := pickInt(cfg, 15, 60)
	workloads := []wl{
		{
			name: "uniform-euclidean",
			mk: func() *instance.Instance {
				space := metric.RandomEuclidean(rng, pickInt(cfg, 6, 12), 2, 20)
				return workload.Uniform(rng, space, cost.PowerLaw(u, 1, 1.5), n, u).Instance
			},
		},
		{
			name: "zipf-line",
			mk: func() *instance.Instance {
				space := metric.RandomLine(rng, pickInt(cfg, 6, 12), 30)
				return workload.Zipf(rng, space, cost.PowerLaw(u, 0.8, 1.5), n, u/2+1, 1.3).Instance
			},
		},
		{
			name: "single-point-singles",
			mk: func() *instance.Instance {
				return workload.SinglePointSingles(rng, cost.CeilSqrt(16), 16).Instance
			},
		},
	}

	for _, w := range workloads {
		in := w.mk()
		pd := core.NewPDOMFLP(in.Space, in.Costs, core.Options{})
		for _, r := range in.Requests {
			pd.Serve(r)
		}
		sol := pd.Solution()
		if err := sol.Verify(in); err != nil {
			return nil, err
		}
		algCost := sol.Cost(in)
		dual := pd.DualTotal()
		gamma := core.Gamma(in.Universe(), len(in.Requests))
		rep := pd.CheckScaledDuals(gamma, 8, pickInt(cfg, 20, 100), rng)
		tab.AddRow(w.name, algCost, dual, algCost/dual, gamma, rep.MaxViolation, rep.Checked)
	}

	// Show the sandwich OPT ≥ γ·dual explicitly on a tiny instance where
	// exact OPT is computable.
	tiny := &instance.Instance{
		Space: metric.NewLine([]float64{0, 1, 4}),
		Costs: cost.PowerLaw(3, 1, 1),
		Requests: []instance.Request{
			{Point: 0, Demands: commodity.New(0, 1)},
			{Point: 1, Demands: commodity.New(1, 2)},
			{Point: 2, Demands: commodity.New(0)},
		},
	}
	pd := core.NewPDOMFLP(tiny.Space, tiny.Costs, core.Options{})
	for _, r := range tiny.Requests {
		pd.Serve(r)
	}
	gamma := core.Gamma(3, 3)
	sand := report.NewTable("dual: weak-duality sandwich on a tiny exact instance",
		"gamma*dual (≤ OPT)", "exact OPT", "cost(ALG)", "ratio")
	// Local import cycle avoidance: exact solver lives in baseline.
	exact := exactTinyOPT(tiny)
	sand.AddRow(gamma*pd.DualTotal(), exact, pd.Solution().Cost(tiny), pd.Solution().Cost(tiny)/exact)
	return &Result{Tables: []*report.Table{tab, sand}}, nil
}
