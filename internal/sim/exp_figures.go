package sim

import (
	"math"
	"math/rand"

	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/lowerbound"
	"repro/internal/metric"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:         "fig1",
		Title:      "Lower-bound game dynamics: rounds X and predictions T",
		Reproduces: "Figure 1 (ALG's behaviour in rounds 1..X of the Theorem 2 game)",
		Run:        runFig1,
	})
	register(Experiment{
		ID:         "fig2",
		Title:      "Theorem 18 bound curves over the cost exponent x",
		Reproduces: "Figure 2 (√|S|^{(2x−x²)/2} vs min{√|S|^{(2−x)/2}, √|S|^{x/2}}, |S|=10,000)",
		Run:        runFig2,
	})
	register(Experiment{
		ID:         "fig3",
		Title:      "RAND-OMFLP connection modes: small facilities vs one large",
		Reproduces: "Figure 3 (cheapest connection for a 3-commodity request)",
		Run:        runFig3,
	})
}

// runFig1 plays the Theorem 2 game with PD-OMFLP and reports, per universe
// size, the Figure 1 quantities: the number of facility-opening rounds X
// (≈ √|S| before the algorithm predicts) and the prediction volume T (the
// commodities covered beyond those requested).
func runFig1(cfg Config) (*Result, error) {
	sizes := pick(cfg, []int{16, 64}, []int{16, 64, 256, 1024, 4096})
	reps := pickInt(cfg, 3, 20)

	tab := report.NewTable("fig1: game dynamics of PD-OMFLP",
		"|S|", "sqrt(S)", "rounds X", "predicted T", "X/sqrt(S)", "ratio")
	tab.Note = "Figure 1: X facility rounds, then one large facility predicting T commodities"

	var xs, ys []float64
	for _, u := range sizes {
		g, err := lowerbound.NewTheorem2Game(u)
		if err != nil {
			return nil, err
		}
		ratio, rounds, predicted := g.ExpectedRatioParallel(core.PDFactory(core.Options{}), cfg.Seed, reps, cfg.Workers)
		root := math.Sqrt(float64(u))
		tab.AddRow(u, root, rounds, predicted, rounds/root, ratio)
		xs = append(xs, root)
		ys = append(ys, rounds)
	}

	trace := traceTable(cfg)
	return &Result{
		Tables: []*report.Table{tab, trace},
		Charts: []ChartSpec{{
			Title:  "fig1: opening rounds X vs sqrt(|S|)",
			Series: []report.Series{{Name: "X(PD)", X: xs, Y: ys}, {Name: "y=x", X: xs, Y: xs}},
		}},
	}, nil
}

// traceTable renders one concrete game run step by step (the Figure 1
// timeline: covered commodities per round).
func traceTable(cfg Config) *report.Table {
	u := pickInt(cfg, 64, 256)
	g, err := lowerbound.NewTheorem2Game(u)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := g.Play(core.PDFactory(core.Options{}), rng, cfg.Seed)
	tab := report.NewTable("fig1: one game trace (PD-OMFLP)",
		"step", "requested", "covered", "facilities")
	for _, st := range res.Trace {
		tab.AddRow(st.Step, st.RequestedSoFar, st.CoveredSoFar, st.FacilitiesSoFar)
	}
	return tab
}

// runFig2 regenerates the two exponent curves of Figure 2 exactly as
// plotted in the paper (|S| = 10,000, so √|S| = 100 and both curves peak at
// ⁴√|S| = 10 at x = 1).
func runFig2(cfg Config) (*Result, error) {
	const u = 10000
	step := 0.1
	if cfg.Quick {
		step = 0.25
	}
	tab := report.NewTable("fig2: Theorem 18 bound factors, |S|=10000",
		"x", "upper sqrtS^((2x-x^2)/2)", "lower min{sqrtS^((2-x)/2), sqrtS^(x/2)}", "gap")
	tab.Note = "Figure 2: curves coincide at x in {0,1,2}; both peak at 4th-root(|S|)=10"

	var xs, upper, lower []float64
	for x := 0.0; x <= 2.0+1e-9; x += step {
		ub := lowerbound.ClassCUpperBound(u, x)
		lb := lowerbound.ClassCLowerBound(u, x)
		tab.AddRow(x, ub, lb, ub/lb)
		xs = append(xs, x)
		upper = append(upper, ub)
		lower = append(lower, lb)
	}
	return &Result{
		Tables: []*report.Table{tab},
		Charts: []ChartSpec{{
			Title: "fig2: bound factors vs x (|S|=10000)",
			Series: []report.Series{
				{Name: "upper", X: xs, Y: upper},
				{Name: "lower", X: xs, Y: lower},
			},
		}},
	}, nil
}

// runFig3 reproduces the two situations of Figure 3: a request demanding
// three commodities connects either to three nearby small facilities (left)
// or to a single large facility (right), whichever is cheaper.
func runFig3(cfg Config) (*Result, error) {
	u := 3
	costs := cost.PowerLaw(u, 1, 10) // expensive enough that opening never beats connecting
	demands := commodity.New(0, 1, 2)

	type scenario struct {
		name      string
		smallAt   [3]int // point of the small facility for each commodity
		largeAt   int
		wantLarge bool
		space     metric.Space
		reqPoint  int
	}
	// Line: request at 0; smalls at distance 1; large at distance d.
	line := metric.NewLine([]float64{0, 1, -1, 1.5, 20, 2})
	scenarios := []scenario{
		{
			name:      "left: smalls near, large far",
			smallAt:   [3]int{1, 2, 3}, // distances 1, 1, 1.5 → Σ = 3.5
			largeAt:   4,               // distance 20
			wantLarge: false,
			space:     line,
			reqPoint:  0,
		},
		{
			name:      "right: large nearby",
			smallAt:   [3]int{1, 2, 3},
			largeAt:   5, // distance 2 < 3.5
			wantLarge: true,
			space:     line,
			reqPoint:  0,
		},
	}

	tab := report.NewTable("fig3: connection mode chosen by RAND-OMFLP",
		"scenario", "X(r) small-mode cost", "Z(r) large-mode cost", "chosen", "links")
	for _, sc := range scenarios {
		ra := core.NewRandOMFLP(sc.space, costs, core.Options{}, rand.New(rand.NewSource(cfg.Seed)))
		for e := 0; e < u; e++ {
			ra.PlantSmall(e, sc.smallAt[e])
		}
		ra.PlantLarge(sc.largeAt)
		r := instance.Request{Point: sc.reqPoint, Demands: demands}
		_, x, z := ra.Budgets(r)
		ra.Serve(r)
		sol := ra.Solution()
		links := sol.Assign[len(sol.Assign)-1]
		choseLarge := len(links) == 1 && sol.Facilities[links[0]].Config.Len() == u
		mode := "small facilities"
		if choseLarge {
			mode = "one large facility"
		}
		if choseLarge != sc.wantLarge {
			tab.AddRow(sc.name, x, z, mode+" (UNEXPECTED)", len(links))
		} else {
			tab.AddRow(sc.name, x, z, mode, len(links))
		}
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}
