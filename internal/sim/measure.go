package sim

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/online"
	"repro/internal/workload"
)

// bestKnownOPT returns the tightest available upper bound on OPT for a
// trace: the minimum of the planted solution cost (if any) and the offline
// greedy + local-search proxy. The second return names the source.
func bestKnownOPT(tr *workload.Trace, moveBudget int) (float64, string) {
	res := baseline.BestOffline(tr.Instance, moveBudget)
	best, src := res.Cost, res.Name
	if tr.PlantedCost > 0 && tr.PlantedCost < best {
		best, src = tr.PlantedCost, "planted"
	}
	return best, src
}

// meanCost replays the trace through the factory `reps` times with distinct
// seeds and returns the mean cost. Deterministic algorithms short-circuit
// to one run. Every run is feasibility-checked; errors propagate.
func meanCost(f online.Factory, tr *workload.Trace, seed int64, reps int) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	var sum float64
	for i := 0; i < reps; i++ {
		_, c, err := online.Run(f, tr.Instance, seed+int64(i)*104729, true)
		if err != nil {
			return 0, err
		}
		sum += c
	}
	return sum / float64(reps), nil
}

// ratioRow computes mean empirical ratios for a set of algorithms on one
// trace against the best-known OPT bound.
func ratioRow(fs []online.Factory, tr *workload.Trace, seed int64, reps, moveBudget int) (opt float64, src string, ratios []float64, err error) {
	opt, src = bestKnownOPT(tr, moveBudget)
	if opt <= 0 || math.IsInf(opt, 1) {
		return 0, src, nil, fmt.Errorf("sim: OPT bound %g unusable for %s", opt, tr.Name)
	}
	ratios = make([]float64, len(fs))
	for i, f := range fs {
		c, e := meanCost(f, tr, seed, reps)
		if e != nil {
			return 0, src, nil, e
		}
		ratios[i] = c / opt
	}
	return opt, src, ratios, nil
}
