package sim

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/online"
	"repro/internal/par"
	"repro/internal/workload"
)

// bestKnownOPT returns the tightest available upper bound on OPT for a
// trace: the minimum of the planted solution cost (if any) and the offline
// greedy + local-search proxy. The second return names the source.
func bestKnownOPT(tr *workload.Trace, moveBudget int) (float64, string) {
	res := baseline.BestOffline(tr.Instance, moveBudget)
	best, src := res.Cost, res.Name
	if tr.PlantedCost > 0 && tr.PlantedCost < best {
		best, src = tr.PlantedCost, "planted"
	}
	return best, src
}

// meanCost replays the trace through the factory `reps` times with distinct
// per-rep seeds, fanned out across cfg.Workers goroutines, and returns the
// mean cost (reduced in rep order, so identical for every worker count).
// Every run is feasibility-checked; errors propagate.
func meanCost(cfg Config, f online.Factory, tr *workload.Trace, seed int64, reps int) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	return par.MeanOf(cfg.Workers, reps, func(i int) (float64, error) {
		_, c, err := online.Run(f, tr.Instance, seed+int64(i)*104729, true)
		return c, err
	})
}

// ratioRow computes mean empirical ratios for a set of algorithms on one
// trace against the best-known OPT bound. The algorithms run concurrently
// (they are independent); the returned slice is in factory order.
func ratioRow(cfg Config, fs []online.Factory, tr *workload.Trace, seed int64, reps, moveBudget int) (opt float64, src string, ratios []float64, err error) {
	opt, src = bestKnownOPT(tr, moveBudget)
	if opt <= 0 || math.IsInf(opt, 1) {
		return 0, src, nil, fmt.Errorf("sim: OPT bound %g unusable for %s", opt, tr.Name)
	}
	costs, err := par.Map(cfg.Workers, len(fs), func(i int) (float64, error) {
		return meanCost(seqConfig(cfg), fs[i], tr, seed, reps)
	})
	if err != nil {
		return 0, src, nil, err
	}
	ratios = make([]float64, len(fs))
	for i, c := range costs {
		ratios[i] = c / opt
	}
	return opt, src, ratios, nil
}

// seqConfig returns cfg with Workers forced to 1, for nesting: an outer
// par.Map already fans out, so inner loops run inline on the worker.
func seqConfig(cfg Config) Config {
	cfg.Workers = 1
	return cfg
}
