package sim

import (
	"math/rand"

	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:         "lem14",
		Title:      "Lemma 14 bridge: covering instances extracted from live PD runs",
		Reproduces: "Lemma 14 (the A/B request partition of PD-OMFLP forms a c-ordered covering instance)",
		Run:        runLem14,
	})
}

// runLem14 executes PD-OMFLP with analysis tracing, extracts the Definition 9
// instance for every (commodity, point) pair as the Lemma 14 proof does, and
// reports validity and covering weight vs the 2c·H_n bound — the bridge
// between the algorithm's execution and its competitive analysis.
func runLem14(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := pickInt(cfg, 3, 5)
	n := pickInt(cfg, 15, 50)
	points := pickInt(cfg, 4, 8)

	space := metric.RandomEuclidean(rng, points, 2, 15)
	costs := cost.PowerLaw(u, 1, 1.5)
	pd := core.NewPDOMFLP(space, costs, core.Options{TraceAnalysis: true})
	for i := 0; i < n; i++ {
		pd.Serve(instance.Request{
			Point:   rng.Intn(points),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}

	tab := report.NewTable("lem14: execution-derived c-ordered covering instances",
		"commodity", "point", "elements", "valid", "cover weight", "2c*H_n", "utilization")
	tab.Note = "Definition 9 monotonicity must emerge from PD's execution; weight ≤ 2c·H_n (Lemma 12)"

	extracted, worstUtil := 0, 0.0
	for e := 0; e < u; e++ {
		for m := 0; m < points; m++ {
			inst, ok := pd.CoveringInstance(e, m)
			if !ok {
				continue
			}
			valid := "yes"
			if err := inst.Validate(); err != nil {
				valid = "NO: " + err.Error()
			}
			res := inst.Cover()
			util := res.Weight / inst.Bound()
			if util > worstUtil {
				worstUtil = util
			}
			extracted++
			// Report a sample: first point per commodity plus any invalid.
			if m == 0 || valid != "yes" {
				tab.AddRow(e, m, inst.N(), valid, res.Weight, inst.Bound(), util)
			}
		}
	}

	sum := report.NewTable("lem14: summary", "quantity", "value")
	sum.AddRow("instances extracted", extracted)
	sum.AddRow("worst utilization (must be ≤ 1)", worstUtil)
	return &Result{Tables: []*report.Table{tab, sum}}, nil
}
