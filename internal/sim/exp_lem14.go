package sim

import (
	"math/rand"

	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/par"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:         "lem14",
		Title:      "Lemma 14 bridge: covering instances extracted from live PD runs",
		Reproduces: "Lemma 14 (the A/B request partition of PD-OMFLP forms a c-ordered covering instance)",
		Run:        runLem14,
	})
}

// runLem14 executes PD-OMFLP with analysis tracing, extracts the Definition 9
// instance for every (commodity, point) pair as the Lemma 14 proof does, and
// reports validity and covering weight vs the 2c·H_n bound — the bridge
// between the algorithm's execution and its competitive analysis.
func runLem14(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := pickInt(cfg, 3, 5)
	n := pickInt(cfg, 15, 50)
	points := pickInt(cfg, 4, 8)

	space := metric.RandomEuclidean(rng, points, 2, 15)
	costs := cost.PowerLaw(u, 1, 1.5)
	pd := core.NewPDOMFLP(space, costs, core.Options{TraceAnalysis: true})
	for i := 0; i < n; i++ {
		pd.Serve(instance.Request{
			Point:   rng.Intn(points),
			Demands: commodity.RandomSubset(rng, u, 1+rng.Intn(u)),
		})
	}

	tab := report.NewTable("lem14: execution-derived c-ordered covering instances",
		"commodity", "point", "elements", "valid", "cover weight", "2c*H_n", "utilization")
	tab.Note = "Definition 9 monotonicity must emerge from PD's execution; weight ≤ 2c·H_n (Lemma 12)"

	// Extraction and covering are read-only on the finished PD run, so the
	// (commodity, point) grid fans out across workers; rows merge back in
	// (e, m) order.
	type cell struct {
		ok       bool
		valid    string
		elements int
		weight   float64
		bound    float64
		util     float64
	}
	cells, err := par.Map(cfg.Workers, u*points, func(i int) (cell, error) {
		e, m := i/points, i%points
		inst, ok := pd.CoveringInstance(e, m)
		if !ok {
			return cell{}, nil
		}
		valid := "yes"
		if err := inst.Validate(); err != nil {
			valid = "NO: " + err.Error()
		}
		res := inst.Cover()
		return cell{
			ok:       true,
			valid:    valid,
			elements: inst.N(),
			weight:   res.Weight,
			bound:    inst.Bound(),
			util:     res.Weight / inst.Bound(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	extracted, worstUtil := 0, 0.0
	for i, c := range cells {
		if !c.ok {
			continue
		}
		e, m := i/points, i%points
		if c.util > worstUtil {
			worstUtil = c.util
		}
		extracted++
		// Report a sample: first point per commodity plus any invalid.
		if m == 0 || c.valid != "yes" {
			tab.AddRow(e, m, c.elements, c.valid, c.weight, c.bound, c.util)
		}
	}

	sum := report.NewTable("lem14: summary", "quantity", "value")
	sum.AddRow("instances extracted", extracted)
	sum.AddRow("worst utilization (must be ≤ 1)", worstUtil)
	return &Result{Tables: []*report.Table{tab, sum}}, nil
}
