package sim

import (
	"math"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "thm4",
		Title:      "PD-OMFLP competitiveness: n sweep and |S| sweep vs baselines",
		Reproduces: "Theorem 4 (O(√|S|·log n) upper bound for the deterministic algorithm)",
		Run:        runThm4,
	})
	register(Experiment{
		ID:         "thm19",
		Title:      "RAND-OMFLP vs PD-OMFLP on the same workloads",
		Reproduces: "Theorem 19 (O(√|S|·log n/log log n) randomized upper bound)",
		Run:        runThm19,
	})
}

// Workload generation in these experiments gives every row its own
// sub-seeded rng stream (workload.Rng with a per-sweep, per-row stream id),
// so whole rows — trace generation, the offline OPT proxy, and the online
// replays, which dominate wall-clock here — fan out across Config.Workers
// instead of only the repetitions inside a row. Row results are merged in
// index order, keeping tables byte-identical for every worker count.

func runThm4(cfg Config) (*Result, error) {
	factories := []online.Factory{
		core.PDFactory(core.Options{}),
		core.RandFactory(core.Options{}),
		baseline.PerCommodityPDFactory(nil),
		baseline.NoPredictionFactory(nil),
	}
	moveBudget := pickInt(cfg, 12, 40)
	reps := pickInt(cfg, 1, 3)

	// Sweep 1: n grows, |S| fixed — ratio/log n should stay flat for PD.
	nTab := report.NewTable("thm4: n sweep (clustered 2-d workload, |S|=8)",
		"n", "OPT proxy", "source", "pd", "pd/log2(n)", "rand", "per-commodity", "no-prediction")
	nTab.Note = "Theorem 4: PD ratio grows at most like log n at fixed |S|"
	u := 8
	ns := pick(cfg, []int{20, 40}, []int{25, 50, 100, 200, 400})
	type ratioResult struct {
		opt    float64
		src    string
		ratios []float64
	}
	nRows, err := par.Map(cfg.Workers, len(ns), func(i int) (ratioResult, error) {
		rng := workload.Rng(cfg.Seed, 1, int64(i))
		costs := cost.PowerLaw(u, 1, 2)
		tr := workload.Clustered(rng, costs, ns[i], 1+ns[i]/25, 100, 2)
		opt, src, ratios, err := ratioRow(seqConfig(cfg), factories, tr, cfg.Seed, reps, moveBudget)
		return ratioResult{opt, src, ratios}, err
	})
	if err != nil {
		return nil, err
	}
	var nVals, pdRatios []float64
	for i, row := range nRows {
		n := ns[i]
		nTab.AddRow(n, row.opt, row.src, row.ratios[0], row.ratios[0]/math.Log2(float64(n)),
			row.ratios[1], row.ratios[2], row.ratios[3])
		nVals = append(nVals, float64(n))
		pdRatios = append(pdRatios, row.ratios[0])
	}

	// Sweep 2: |S| grows with bundled demand — the workload that separates
	// PD (flat, thanks to large facilities) from per-commodity (~√|S|).
	sTab := report.NewTable("thm4: |S| sweep (bundled demand, fixed n)",
		"|S|", "OPT proxy", "source", "pd", "rand", "per-commodity", "pc/sqrt(S)")
	sTab.Note = "bundled requests: per-commodity pays ~√|S|·OPT; PD stays O(log n)"
	n := pickInt(cfg, 15, 60)
	ss := pick(cfg, []int{4, 16}, []int{4, 16, 64, 144})
	sRows, err := par.Map(cfg.Workers, len(ss), func(i int) (ratioResult, error) {
		rng := workload.Rng(cfg.Seed, 2, int64(i))
		space := metric.RandomEuclidean(rng, pickInt(cfg, 8, 20), 2, 50)
		costs := cost.PowerLaw(ss[i], 1, 2)
		tr := workload.Bundled(rng, space, costs, n)
		opt, src, ratios, err := ratioRow(seqConfig(cfg), factories[:3], tr, cfg.Seed, reps, moveBudget)
		return ratioResult{opt, src, ratios}, err
	})
	if err != nil {
		return nil, err
	}
	for i, row := range sRows {
		s := ss[i]
		sTab.AddRow(s, row.opt, row.src, row.ratios[0], row.ratios[1], row.ratios[2],
			row.ratios[2]/math.Sqrt(float64(s)))
	}

	return &Result{
		Tables: []*report.Table{nTab, sTab},
		Charts: []ChartSpec{{
			Title:  "thm4: PD ratio vs n (clustered)",
			Series: []report.Series{{Name: "pd", X: nVals, Y: pdRatios}},
		}},
	}, nil
}

func runThm19(cfg Config) (*Result, error) {
	moveBudget := pickInt(cfg, 12, 40)
	randReps := pickInt(cfg, 3, 10)

	tab := report.NewTable("thm19: RAND vs PD across workload families",
		"workload", "OPT proxy", "source", "pd", "rand (mean)", "rand (std)", "rand/pd")
	tab.Note = "Theorem 19: RAND's expected ratio is O(√|S|·log n/log log n) — comparable to PD"

	u := pickInt(cfg, 6, 12)
	n := pickInt(cfg, 25, 120)
	costs := cost.PowerLaw(u, 1, 2)
	builders := []func(rng *rand.Rand) *workload.Trace{
		func(rng *rand.Rand) *workload.Trace {
			return workload.Uniform(rng, metric.RandomEuclidean(rng, pickInt(cfg, 8, 25), 2, 50), costs, n, u/2)
		},
		func(rng *rand.Rand) *workload.Trace {
			return workload.Clustered(rng, costs, n, 3, 100, 2)
		},
		func(rng *rand.Rand) *workload.Trace {
			return workload.Zipf(rng, metric.RandomLine(rng, pickInt(cfg, 8, 25), 100), costs, n, u/2, 1.4)
		},
		func(rng *rand.Rand) *workload.Trace {
			return workload.Bundled(rng, metric.RandomEuclidean(rng, pickInt(cfg, 6, 15), 2, 50), costs, n/2)
		},
	}
	pdF := core.PDFactory(core.Options{})
	raF := core.RandFactory(core.Options{})

	type thm19Row struct {
		name    string
		opt     float64
		src     string
		pdRatio float64
		sum     stats.Summary
	}
	rows, err := par.Map(cfg.Workers, len(builders), func(i int) (thm19Row, error) {
		tr := builders[i](workload.Rng(cfg.Seed, 3, int64(i)))
		opt, src := bestKnownOPT(tr, moveBudget)
		pdCost, err := meanCost(seqConfig(cfg), pdF, tr, cfg.Seed, 1)
		if err != nil {
			return thm19Row{}, err
		}
		// Per-seed RAND costs, reduced in rep order, so the row can report
		// the spread.
		ratios, err := par.Map(1, randReps, func(j int) (float64, error) {
			_, c, err := online.Run(raF, tr.Instance, cfg.Seed+int64(j)*104729, true)
			return c / opt, err
		})
		if err != nil {
			return thm19Row{}, err
		}
		return thm19Row{
			name:    tr.Name,
			opt:     opt,
			src:     src,
			pdRatio: pdCost / opt,
			sum:     stats.Summarize(ratios),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tab.AddRow(row.name, row.opt, row.src, row.pdRatio, row.sum.Mean, row.sum.Std,
			row.sum.Mean/row.pdRatio)
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}
