package sim

import (
	"math"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "thm4",
		Title:      "PD-OMFLP competitiveness: n sweep and |S| sweep vs baselines",
		Reproduces: "Theorem 4 (O(√|S|·log n) upper bound for the deterministic algorithm)",
		Run:        runThm4,
	})
	register(Experiment{
		ID:         "thm19",
		Title:      "RAND-OMFLP vs PD-OMFLP on the same workloads",
		Reproduces: "Theorem 19 (O(√|S|·log n/log log n) randomized upper bound)",
		Run:        runThm19,
	})
}

func runThm4(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	factories := []online.Factory{
		core.PDFactory(core.Options{}),
		core.RandFactory(core.Options{}),
		baseline.PerCommodityPDFactory(nil),
		baseline.NoPredictionFactory(nil),
	}
	moveBudget := pickInt(cfg, 12, 40)
	reps := pickInt(cfg, 1, 3)

	// Sweep 1: n grows, |S| fixed — ratio/log n should stay flat for PD.
	nTab := report.NewTable("thm4: n sweep (clustered 2-d workload, |S|=8)",
		"n", "OPT proxy", "source", "pd", "pd/log2(n)", "rand", "per-commodity", "no-prediction")
	nTab.Note = "Theorem 4: PD ratio grows at most like log n at fixed |S|"
	u := 8
	var nVals, pdRatios []float64
	for _, n := range pick(cfg, []int{20, 40}, []int{25, 50, 100, 200, 400}) {
		costs := cost.PowerLaw(u, 1, 2)
		tr := workload.Clustered(rng, costs, n, 1+n/25, 100, 2)
		opt, src, ratios, err := ratioRow(cfg, factories, tr, cfg.Seed, reps, moveBudget)
		if err != nil {
			return nil, err
		}
		nTab.AddRow(n, opt, src, ratios[0], ratios[0]/math.Log2(float64(n)),
			ratios[1], ratios[2], ratios[3])
		nVals = append(nVals, float64(n))
		pdRatios = append(pdRatios, ratios[0])
	}

	// Sweep 2: |S| grows with bundled demand — the workload that separates
	// PD (flat, thanks to large facilities) from per-commodity (~√|S|).
	sTab := report.NewTable("thm4: |S| sweep (bundled demand, fixed n)",
		"|S|", "OPT proxy", "source", "pd", "rand", "per-commodity", "pc/sqrt(S)")
	sTab.Note = "bundled requests: per-commodity pays ~√|S|·OPT; PD stays O(log n)"
	n := pickInt(cfg, 15, 60)
	for _, s := range pick(cfg, []int{4, 16}, []int{4, 16, 64, 144}) {
		space := metric.RandomEuclidean(rng, pickInt(cfg, 8, 20), 2, 50)
		costs := cost.PowerLaw(s, 1, 2)
		tr := workload.Bundled(rng, space, costs, n)
		opt, src, ratios, err := ratioRow(cfg, factories[:3], tr, cfg.Seed, reps, moveBudget)
		if err != nil {
			return nil, err
		}
		sTab.AddRow(s, opt, src, ratios[0], ratios[1], ratios[2],
			ratios[2]/math.Sqrt(float64(s)))
	}

	return &Result{
		Tables: []*report.Table{nTab, sTab},
		Charts: []ChartSpec{{
			Title:  "thm4: PD ratio vs n (clustered)",
			Series: []report.Series{{Name: "pd", X: nVals, Y: pdRatios}},
		}},
	}, nil
}

func runThm19(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	moveBudget := pickInt(cfg, 12, 40)
	randReps := pickInt(cfg, 3, 10)

	tab := report.NewTable("thm19: RAND vs PD across workload families",
		"workload", "OPT proxy", "source", "pd", "rand (mean)", "rand (std)", "rand/pd")
	tab.Note = "Theorem 19: RAND's expected ratio is O(√|S|·log n/log log n) — comparable to PD"

	u := pickInt(cfg, 6, 12)
	n := pickInt(cfg, 25, 120)
	costs := cost.PowerLaw(u, 1, 2)
	traces := []*workload.Trace{
		workload.Uniform(rng, metric.RandomEuclidean(rng, pickInt(cfg, 8, 25), 2, 50), costs, n, u/2),
		workload.Clustered(rng, costs, n, 3, 100, 2),
		workload.Zipf(rng, metric.RandomLine(rng, pickInt(cfg, 8, 25), 100), costs, n, u/2, 1.4),
		workload.Bundled(rng, metric.RandomEuclidean(rng, pickInt(cfg, 6, 15), 2, 50), costs, n/2),
	}
	pdF := core.PDFactory(core.Options{})
	raF := core.RandFactory(core.Options{})
	for _, tr := range traces {
		opt, src := bestKnownOPT(tr, moveBudget)
		pdCost, err := meanCost(cfg, pdF, tr, cfg.Seed, 1)
		if err != nil {
			return nil, err
		}
		// Per-seed RAND costs (fanned out across workers) so the table can
		// report the spread.
		costs, err := par.Map(cfg.Workers, randReps, func(i int) (float64, error) {
			_, c, err := online.Run(raF, tr.Instance, cfg.Seed+int64(i)*104729, true)
			return c / opt, err
		})
		if err != nil {
			return nil, err
		}
		sum := stats.Summarize(costs)
		tab.AddRow(tr.Name, opt, src, pdCost/opt, sum.Mean, sum.Std, sum.Mean/(pdCost/opt))
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}
