package sim

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/online"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:         "thm2",
		Title:      "Ω(√|S|) lower bound game: empirical ratios for every algorithm",
		Reproduces: "Theorem 2 (single-point adversary, cost ⌈|σ|/√|S|⌉)",
		Run:        runThm2,
	})
	register(Experiment{
		ID:         "cor3",
		Title:      "Line metric: √|S| game plus log n/log log n line adversary",
		Reproduces: "Corollary 3 (combined lower bound on line metrics)",
		Run:        runCor3,
	})
	register(Experiment{
		ID:         "thm18",
		Title:      "Class-C cost functions: ratio vs exponent x",
		Reproduces: "Theorem 18 (adaptive upper/lower bounds for g_x(k)=k^{x/2})",
		Run:        runThm18,
	})
}

func runThm2(cfg Config) (*Result, error) {
	sizes := pick(cfg, []int{16, 64}, []int{16, 64, 256, 1024})
	reps := pickInt(cfg, 3, 15)

	factories := []online.Factory{
		core.PDFactory(core.Options{}),
		core.RandFactory(core.Options{}),
		baseline.PerCommodityPDFactory(nil),
		baseline.NoPredictionFactory(nil),
	}
	tab := report.NewTable("thm2: expected ratio on the Theorem 2 game",
		"|S|", "sqrt(S)", "LB sqrt(S)/16", "pd", "rand", "per-commodity", "no-prediction")
	tab.Note = "Theorem 2: every ratio must exceed √|S|/16; prediction caps PD at ~2√|S|"

	var sVals []float64
	ratioSeries := make([][]float64, len(factories))
	for _, u := range sizes {
		g, err := lowerbound.NewTheorem2Game(u)
		if err != nil {
			return nil, err
		}
		row := []interface{}{u, math.Sqrt(float64(u)), lowerbound.TheoreticalLowerBound(u)}
		ratios, err := par.Map(cfg.Workers, len(factories), func(fi int) (float64, error) {
			ratio, _, _ := g.ExpectedRatio(factories[fi], cfg.Seed+int64(fi), reps)
			return ratio, nil
		})
		if err != nil {
			return nil, err
		}
		for fi, ratio := range ratios {
			row = append(row, ratio)
			ratioSeries[fi] = append(ratioSeries[fi], ratio)
		}
		tab.AddRow(row...)
		sVals = append(sVals, float64(u))
	}

	// Scaling fit: PD's ratio must grow like |S|^0.5 in √|S|, i.e. S^0.5
	// as a function of S... the ratio is Θ(√|S|) so the log-log exponent
	// against |S| should be ≈ 0.5.
	fit := report.NewTable("thm2: power-law fit ratio ~ |S|^b", "algorithm", "exponent b", "R^2")
	names := []string{"pd", "rand", "per-commodity", "no-prediction"}
	var series []report.Series
	for fi := range factories {
		if len(sVals) >= 2 {
			b, _, r2 := stats.FitPowerLaw(sVals, ratioSeries[fi])
			fit.AddRow(names[fi], b, r2)
		}
		series = append(series, report.Series{Name: names[fi], X: sVals, Y: ratioSeries[fi]})
	}
	return &Result{
		Tables: []*report.Table{tab, fit},
		Charts: []ChartSpec{{Title: "thm2: ratio vs |S|", Series: series}},
	}, nil
}

func runCor3(cfg Config) (*Result, error) {
	depths := pick(cfg, []int{3, 5}, []int{3, 5, 7, 9, 11})
	perLevel := pickInt(cfg, 2, 4)
	reps := pickInt(cfg, 2, 6)

	tab := report.NewTable("cor3: simplified line adversary (single commodity component)",
		"depth", "requests n", "pd ratio (exact OPT)", "ratio/(log n/log log n)")
	tab.Note = "Corollary 3's additive term; simplified hierarchical adversary, ratios vs the exact line DP optimum"
	f := core.PDFactory(core.Options{})
	for _, d := range depths {
		// Mean ratio against the *exact* line optimum (single-commodity
		// facility location on a line is polynomial; see
		// baseline.LineExactFL). Repetitions run per-seed and independent;
		// each gets its own adversary — Run lazily initializes Points on
		// the receiver, so sharing one across goroutines would race.
		ratio, err := par.MeanOf(cfg.Workers, reps, func(rep int) (float64, error) {
			la := &lowerbound.LineAdversary{Depth: d, PerLevel: perLevel, FacilityCost: 1}
			res := la.Run(f, cfg.Seed+int64(rep)*31)
			opt, err := baseline.LineExactFL(res.Instance)
			if err != nil {
				return 0, err
			}
			if opt <= 0 {
				opt = res.OptProxy
			}
			return res.AlgCost / opt, nil
		})
		if err != nil {
			return nil, err
		}
		n := float64(d * perLevel)
		norm := math.Log(n) / math.Log(math.Log(n)+1e-9)
		if norm <= 0 || math.IsNaN(norm) {
			norm = 1
		}
		tab.AddRow(d, d*perLevel, ratio, ratio/norm)
	}

	// The combined statement: the √|S| game already lives on a (single
	// point of a) line, so both terms coexist on line metrics.
	comb := report.NewTable("cor3: combined bound Ω(√|S| + log n/log log n)",
		"|S|", "game ratio (pd)", "sqrt(S)/16")
	for _, u := range pick(cfg, []int{16, 64}, []int{16, 64, 256}) {
		g, err := lowerbound.NewTheorem2Game(u)
		if err != nil {
			return nil, err
		}
		ratio, _, _ := g.ExpectedRatioParallel(f, cfg.Seed, pickInt(cfg, 3, 10), cfg.Workers)
		comb.AddRow(u, ratio, lowerbound.TheoreticalLowerBound(u))
	}
	return &Result{Tables: []*report.Table{tab, comb}}, nil
}

func runThm18(cfg Config) (*Result, error) {
	u := pickInt(cfg, 64, 1024)
	reps := pickInt(cfg, 3, 12)
	xsGrid := []float64{0, 0.25, 0.5, 0.75, 1, 1.25, 1.5, 1.75, 2}
	if cfg.Quick {
		xsGrid = []float64{0, 0.5, 1, 1.5, 2}
	}

	tab := report.NewTable("thm18: PD-OMFLP on the class-C game",
		"x", "OPT g_x(sqrt S)", "pd ratio", "LB factor", "UB factor", "ratio/LB")
	tab.Note = "Theorem 18: measured ratio should track min{√S^{(2−x)/2}, √S^{x/2}} with a constant, peaking at x=1"

	var xs, measured, lbs, ubs []float64
	f := core.PDFactory(core.Options{})
	for _, x := range xsGrid {
		g, err := lowerbound.NewClassCGame(u, x)
		if err != nil {
			return nil, err
		}
		ratio, _, _ := g.ExpectedRatioParallel(f, cfg.Seed, reps, cfg.Workers)
		lb := lowerbound.ClassCLowerBound(u, x)
		ub := lowerbound.ClassCUpperBound(u, x)
		tab.AddRow(x, g.OptCost(), ratio, lb, ub, ratio/lb)
		xs = append(xs, x)
		measured = append(measured, ratio)
		lbs = append(lbs, lb)
		ubs = append(ubs, ub)
	}
	return &Result{
		Tables: []*report.Table{tab},
		Charts: []ChartSpec{{
			Title: "thm18: measured ratio vs bound factors",
			Series: []report.Series{
				{Name: "pd measured", X: xs, Y: measured},
				{Name: "lower factor", X: xs, Y: lbs},
				{Name: "upper factor", X: xs, Y: ubs},
			},
		}},
	}, nil
}
