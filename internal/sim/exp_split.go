package sim

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "ext_split",
		Title:      "The alternative cost model: per-commodity connection charges",
		Reproduces: "Section 1.1 'A different cost model' (simulation by splitting requests into singletons)",
		Run:        runExtSplit,
	})
}

// runExtSplit exercises the Section 1.1 simulation: the model where each
// served commodity pays its own connection is handled by feeding the
// algorithms the split (all-singleton) sequence. The table compares, per
// workload: the joint-model cost, the solution's cost re-priced under
// per-commodity accounting, and the cost of running PD directly on the
// split sequence — the paper's reduction says the latter solves the
// alternative model at a ≤ 2× ratio penalty.
//
// Every row owns a sub-seeded rng stream (workload.Rng with a per-row
// stream id), so whole rows — trace generation included — fan out across
// Config.Workers while staying byte-identical to a sequential run.
func runExtSplit(cfg Config) (*Result, error) {
	u := pickInt(cfg, 5, 8)
	n := pickInt(cfg, 20, 60)
	costs := cost.PowerLaw(u, 1, 2)

	tab := report.NewTable("ext_split: joint vs per-commodity connection accounting",
		"workload", "pd joint cost", "re-priced per-commodity", "pd on split sequence", "split n")
	tab.Note = "per-commodity re-pricing ≥ joint; running on the split sequence solves the alternative model"

	builders := []func(rng *rand.Rand) *workload.Trace{
		func(rng *rand.Rand) *workload.Trace {
			return workload.Uniform(rng, metric.RandomEuclidean(rng, pickInt(cfg, 8, 16), 2, 40), costs, n, u/2+1)
		},
		func(rng *rand.Rand) *workload.Trace {
			return workload.Bundled(rng, metric.RandomEuclidean(rng, pickInt(cfg, 6, 12), 2, 40), costs, n/2)
		},
	}
	type splitRow struct {
		name                       string
		joint, rePriced, splitCost float64
		splitN                     int
	}
	rows, err := par.Map(cfg.Workers, len(builders), func(i int) (splitRow, error) {
		tr := builders[i](workload.Rng(cfg.Seed, 10, int64(i)))
		sol, joint, err := online.Run(core.PDFactory(core.Options{}), tr.Instance, cfg.Seed, true)
		if err != nil {
			return splitRow{}, err
		}
		rePriced := instance.PerCommodityCost(tr.Instance, sol)
		split := instance.SplitPerCommodity(tr.Instance)
		_, splitCost, err := online.Run(core.PDFactory(core.Options{}),
			split, cfg.Seed, true)
		if err != nil {
			return splitRow{}, err
		}
		return splitRow{name: tr.Name, joint: joint, rePriced: rePriced,
			splitCost: splitCost, splitN: len(split.Requests)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		tab.AddRow(r.name, r.joint, r.rePriced, r.splitCost, r.splitN)
	}
	return &Result{Tables: []*report.Table{tab}}, nil
}
