package sim

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/lowerbound"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "ext_order",
		Title:      "Arrival-order sensitivity: adversarial vs random order",
		Reproduces: "related-work claim (Section 1.2, [11]): weakening the adversary's control over request order lowers Meyerson-style ratios",
		Run:        runExtOrder,
	})
}

// runExtOrder compares the algorithms on identical request multisets
// presented in (a) the generated adversarial/clustered order and (b) a
// uniformly random order. The paper's related-work section notes that
// Meyerson's algorithm — the basis of RAND-OMFLP — performs much better
// when the adversary loses control of the order; this experiment makes the
// claim measurable for the multi-commodity generalization.
//
// Each workload builds its trace from its own sub-seeded rng stream
// (workload.Rng with a per-row stream id) and whole (workload × algorithm)
// rows fan out across Config.Workers — including the OPT proxy and the
// shuffled replays, which dominate wall-clock — while the merged table stays
// byte-identical to a sequential run.
func runExtOrder(cfg Config) (*Result, error) {
	reps := pickInt(cfg, 3, 10)

	tab := report.NewTable("ext_order: ratio under arrival-order policies",
		"workload", "algorithm", "original order", "random order", "random/original")
	tab.Note = "random order only helps (≤ 1 expected) for the sorted hard instances"

	type wl struct {
		name string
		mk   func(rng *rand.Rand) *workload.Trace
	}
	u := pickInt(cfg, 6, 9)
	n := pickInt(cfg, 30, 90)
	costs := cost.PowerLaw(u, 1, 2)
	wls := []wl{
		{
			// Hard ordering: cluster-by-cluster sweep (the generator
			// already groups clusters; sort by point index exaggerates it).
			name: "clustered-sweep",
			mk: func(rng *rand.Rand) *workload.Trace {
				return workload.Clustered(rng, costs, n, 3, 100, 2)
			},
		},
		{
			name: "zipf-line",
			mk: func(rng *rand.Rand) *workload.Trace {
				space := metric.RandomLine(rng, pickInt(cfg, 8, 20), 100)
				return workload.Zipf(rng, space, costs, n, u/2, 1.4)
			},
		},
	}

	algos := []online.Factory{
		core.PDFactory(core.Options{}),
		core.RandFactory(core.Options{}),
	}
	type orderRow struct {
		algorithm             string
		orig, shuffled, ratio float64
	}
	type orderGroup struct {
		workload string
		rows     []orderRow
	}
	groups, err := par.Map(cfg.Workers, len(wls), func(wi int) (orderGroup, error) {
		w := wls[wi]
		// Trace and OPT proxy (the expensive part) computed once per
		// workload, shared by both algorithm rows.
		tr := w.mk(workload.Rng(cfg.Seed, 11, int64(wi)))
		opt, _ := bestKnownOPT(tr, pickInt(cfg, 10, 30))
		g := orderGroup{workload: w.name}
		for _, f := range algos {
			orig, err := meanCost(seqConfig(cfg), f, tr, cfg.Seed, reps)
			if err != nil {
				return orderGroup{}, err
			}
			// Random order: shuffle a copy per repetition; each rep
			// derives its permutation and seed from the rep index.
			shuffled, err := par.MeanOf(1, reps, func(rep int) (float64, error) {
				perm := rand.New(rand.NewSource(cfg.Seed + int64(rep)*13)).Perm(len(tr.Instance.Requests))
				cp := &workload.Trace{
					Instance: &instance.Instance{
						Space: tr.Instance.Space,
						Costs: tr.Instance.Costs,
					},
					Name: tr.Name,
				}
				for _, idx := range perm {
					cp.Instance.Requests = append(cp.Instance.Requests, tr.Instance.Requests[idx])
				}
				return meanCost(seqConfig(cfg), f, cp, cfg.Seed+int64(rep)*17, 1)
			})
			if err != nil {
				return orderGroup{}, err
			}
			g.rows = append(g.rows, orderRow{algorithm: f.Name,
				orig: orig / opt, shuffled: shuffled / opt, ratio: shuffled / orig})
		}
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		for _, r := range g.rows {
			tab.AddRow(g.workload, r.algorithm, r.orig, r.shuffled, r.ratio)
		}
	}

	// The Theorem 2 game is order-invariant for deterministic PD (all
	// singletons at one point are exchangeable); document that too.
	g, err := lowerbound.NewTheorem2Game(pickInt(cfg, 16, 64))
	if err != nil {
		return nil, err
	}
	ratio, _, _ := g.ExpectedRatioParallel(core.PDFactory(core.Options{}), cfg.Seed, reps, cfg.Workers)
	inv := report.NewTable("ext_order: order-invariant case", "game", "pd ratio")
	inv.AddRow("thm2 single point (exchangeable requests)", ratio)
	return &Result{Tables: []*report.Table{tab, inv}}, nil
}
