package sim

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/instance"
	"repro/internal/lowerbound"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:         "ext_order",
		Title:      "Arrival-order sensitivity: adversarial vs random order",
		Reproduces: "related-work claim (Section 1.2, [11]): weakening the adversary's control over request order lowers Meyerson-style ratios",
		Run:        runExtOrder,
	})
}

// runExtOrder compares the algorithms on identical request multisets
// presented in (a) the generated adversarial/clustered order and (b) a
// uniformly random order. The paper's related-work section notes that
// Meyerson's algorithm — the basis of RAND-OMFLP — performs much better
// when the adversary loses control of the order; this experiment makes the
// claim measurable for the multi-commodity generalization.
func runExtOrder(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	reps := pickInt(cfg, 3, 10)

	tab := report.NewTable("ext_order: ratio under arrival-order policies",
		"workload", "algorithm", "original order", "random order", "random/original")
	tab.Note = "random order only helps (≤ 1 expected) for the sorted hard instances"

	type wl struct {
		name string
		mk   func() *workload.Trace
	}
	u := pickInt(cfg, 6, 9)
	n := pickInt(cfg, 30, 90)
	costs := cost.PowerLaw(u, 1, 2)
	wls := []wl{
		{
			// Hard ordering: cluster-by-cluster sweep (the generator
			// already groups clusters; sort by point index exaggerates it).
			name: "clustered-sweep",
			mk: func() *workload.Trace {
				tr := workload.Clustered(rng, costs, n, 3, 100, 2)
				return tr
			},
		},
		{
			name: "zipf-line",
			mk: func() *workload.Trace {
				space := metric.RandomLine(rng, pickInt(cfg, 8, 20), 100)
				return workload.Zipf(rng, space, costs, n, u/2, 1.4)
			},
		},
	}

	algos := []online.Factory{
		core.PDFactory(core.Options{}),
		core.RandFactory(core.Options{}),
	}
	for _, w := range wls {
		tr := w.mk()
		opt, _ := bestKnownOPT(tr, pickInt(cfg, 10, 30))
		for _, f := range algos {
			orig, err := meanCost(cfg, f, tr, cfg.Seed, reps)
			if err != nil {
				return nil, err
			}
			// Random order: shuffle a copy per repetition; each rep derives
			// its permutation and seed from the rep index, so reps fan out.
			shuffled, err := par.MeanOf(cfg.Workers, reps, func(rep int) (float64, error) {
				perm := rand.New(rand.NewSource(cfg.Seed + int64(rep)*13)).Perm(len(tr.Instance.Requests))
				cp := &workload.Trace{
					Instance: &instance.Instance{
						Space: tr.Instance.Space,
						Costs: tr.Instance.Costs,
					},
					Name: tr.Name,
				}
				for _, idx := range perm {
					cp.Instance.Requests = append(cp.Instance.Requests, tr.Instance.Requests[idx])
				}
				return meanCost(seqConfig(cfg), f, cp, cfg.Seed+int64(rep)*17, 1)
			})
			if err != nil {
				return nil, err
			}
			tab.AddRow(w.name, f.Name, orig/opt, shuffled/opt, shuffled/orig)
		}
	}

	// The Theorem 2 game is order-invariant for deterministic PD (all
	// singletons at one point are exchangeable); document that too.
	g, err := lowerbound.NewTheorem2Game(pickInt(cfg, 16, 64))
	if err != nil {
		return nil, err
	}
	ratio, _, _ := g.ExpectedRatioParallel(core.PDFactory(core.Options{}), cfg.Seed, reps, cfg.Workers)
	inv := report.NewTable("ext_order: order-invariant case", "game", "pd ratio")
	inv.AddRow("thm2 single point (exchangeable requests)", ratio)
	return &Result{Tables: []*report.Table{tab, inv}}, nil
}
