// Package omflp is a Go reproduction of "The Online Multi-Commodity
// Facility Location Problem" (Castenow, Feldkord, Knollmann, Malatyali,
// Meyer auf der Heide; SPAA 2020, arXiv:2005.08391).
//
// In the Online Multi-Commodity Facility Location Problem (OMFLP), requests
// arrive over time at points of a metric space, each demanding a subset of a
// commodity universe S. An online algorithm irrevocably opens facilities —
// each at a point, configured with a set of commodities, at construction
// cost f_m^σ — and connects every request to facilities jointly covering its
// demand, paying one distance per connection. The objective is construction
// plus connection cost, compared against the offline optimum (competitive
// analysis).
//
// The package re-exports the repository's stable public API:
//
//   - the paper's two algorithms, PD-OMFLP (deterministic primal-dual,
//     O(√|S|·log n)-competitive, Theorem 4) and RAND-OMFLP (randomized,
//     O(√|S|·log n/log log n)-competitive, Theorem 19), plus the HeavyAware
//     extension of the closing remarks;
//   - baselines: per-commodity decomposition, no-prediction greedy, offline
//     star greedy / local search / exact branch-and-bound;
//   - substrates: metric spaces, construction cost models, commodity sets,
//     workload generators, the Theorem 2 lower-bound game, the c-ordered
//     covering engine of Lemma 12;
//   - the experiment harness regenerating every figure and theorem-scale
//     claim of the paper (see EXPERIMENTS.md).
//
// Streaming. The package also exports a serving engine (Engine,
// EngineConfig, Snapshot, Metrics — see internal/engine): a long-lived
// subsystem hosting many independent OMFLP instances ("tenants") sharded
// across goroutines with bounded mailboxes. It ingests arrivals continuously
// — API calls, JSON-lines op streams, or gentrace file traces — and exposes
// per-tenant snapshots (open facilities, assignments, cost-so-far vs the
// PD dual lower bound) plus engine-wide metrics (arrivals/s, p50/p99 serve
// latency, queue depth). Snapshots are deterministic: a fixed trace and seed
// yield byte-identical output for every shard count; compact snapshots
// (facilities + cost only, no assignment history) stay O(facilities) however
// long the stream. Tenants pin to shards by name hash or, with the
// leastload policy, to the least-loaded shard. The CLI front end is
// "omflp serve"; "gentrace ... | omflp serve -algo pd -shards 8" streams a
// generated workload end to end.
//
// Serving over the network. With -listen-http/-listen-tcp, omflp serve runs
// as a daemon (see internal/server): an HTTP API — POST
// /v1/tenants/{id} (create), POST /v1/tenants/{id}/arrive (single or
// batched arrivals), GET /v1/tenants/{id}/snapshot (?compact=1), GET
// /v1/snapshots, GET /v1/metrics, GET /healthz, POST /v1/checkpoint — and a
// length-prefixed TCP framing of the same op protocol share one engine.
// Engine state checkpoints to <dir>/engine.ckpt.json (atomic rename) on a
// configurable interval and on graceful shutdown; a restarted daemon
// restores the checkpoint and resumes every tenant with no cost divergence,
// because tenant algorithm seeds derive from names and replaying the
// checkpointed arrivals reproduces state byte-for-byte. "omflp loadgen"
// drives a daemon (or spawns one in-process) over either transport with
// configurable concurrency and reports achieved arrivals/s and latency
// percentiles (BENCH_serve.json records them).
//
// Performance. PD-OMFLP maintains its Constraint (3)/(4) bid sums
// incrementally — per (commodity, candidate) accumulators updated when a
// credit is added or lowered — so serving a request costs O(k·|candidates|)
// instead of rescanning the full request history (the naive reference is
// kept behind core.NewPDReference for differential tests and benchmarks;
// the perf experiment quantifies the gap and can emit BENCH_pd.json and
// BENCH_algos.json). Nearest-facility queries and RAND-OMFLP's class-
// distance budget minima are answered from per-point incremental caches, so
// serve throughput no longer degrades linearly in the number of open
// facilities. The experiment harness fans independent repetitions — and,
// where generators own sub-seeded rng streams (workload.SubSeed), whole
// experiment rows — out across a worker pool: ExperimentConfig.Workers
// selects the goroutine count (0 = GOMAXPROCS, 1 = sequential), with
// per-index sub-seeds and ordered merging making every table byte-identical
// across worker counts under a fixed seed.
//
// Quickstart:
//
//	space := omflp.NewLine([]float64{0, 1, 5})
//	costs := omflp.PowerLawCost(8, 1, 1) // g_x(|σ|)=|σ|^{1/2}
//	alg := omflp.NewPD(space, costs, omflp.Options{})
//	alg.Serve(omflp.Request{Point: 0, Demands: omflp.NewSet(1, 2)})
//	sol := alg.Solution()
//
// See the examples/ directory for runnable programs and cmd/omflp for the
// experiment CLI.
package omflp
