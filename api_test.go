package omflp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestPublicAPIQuickstart mirrors the doc-comment quickstart and keeps the
// facade honest: if re-exports drift, this breaks at compile time.
func TestPublicAPIQuickstart(t *testing.T) {
	space := NewLine([]float64{0, 1, 5})
	costs := PowerLawCost(8, 1, 1)
	alg := NewPD(space, costs, Options{})
	alg.Serve(Request{Point: 0, Demands: NewSet(1, 2)})
	sol := alg.Solution()
	if len(sol.Facilities) == 0 {
		t.Fatal("no facilities after first request")
	}
	in := &Instance{Space: space, Costs: costs, Requests: []Request{
		{Point: 0, Demands: NewSet(1, 2)},
	}}
	if err := sol.Verify(in); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRandAndHeavy(t *testing.T) {
	space := NewGrid(6, 10)
	costs := LinearCost(4, 2)
	ra := NewRand(space, costs, Options{}, rand.New(rand.NewSource(1)))
	ra.Serve(Request{Point: 2, Demands: NewSet(0, 3)})
	if len(ra.Solution().Facilities) == 0 {
		t.Error("RAND opened nothing")
	}
	ha := NewHeavyAware(space, costs, Options{}, 2)
	ha.Serve(Request{Point: 1, Demands: NewSet(1)})
	if len(ha.Solution().Facilities) == 0 {
		t.Error("HeavyAware opened nothing")
	}
}

func TestPublicAPIFactoriesAndRun(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	space := NewEuclidean([][]float64{{0, 0}, {3, 4}, {1, 1}})
	costs := PowerLawCost(3, 1, 1)
	tr := UniformWorkload(rng, space, costs, 10, 2)
	for _, f := range []Factory{
		PDFactory(Options{}),
		RandFactory(Options{}),
		HeavyFactory(Options{}, 2),
		PerCommodityFactory(nil),
		NoPredictionFactory(nil),
	} {
		sol, c, err := Run(f, tr.Instance, 1)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if c <= 0 || len(sol.Facilities) == 0 {
			t.Errorf("%s: cost %g, %d facilities", f.Name, c, len(sol.Facilities))
		}
	}
}

func TestPublicAPIOfflineAndGame(t *testing.T) {
	in := &Instance{
		Space: SinglePoint(),
		Costs: CeilSqrtCost(16),
		Requests: []Request{
			{Point: 0, Demands: NewSet(0)},
			{Point: 0, Demands: NewSet(5)},
		},
	}
	exact := ExactSmall(in, 3)
	if exact.Cost != 1 { // one facility covering both, g(2)=⌈2/4⌉=1
		t.Errorf("exact OPT = %g, want 1", exact.Cost)
	}
	best := BestOffline(in, 10)
	if best.Cost < exact.Cost-1e-9 {
		t.Errorf("proxy %g below exact %g", best.Cost, exact.Cost)
	}
	game, err := NewTheorem2Game(16)
	if err != nil {
		t.Fatal(err)
	}
	ratio, _, _ := game.ExpectedRatio(PDFactory(Options{}), 1, 3)
	if ratio < math.Sqrt(16)/16 {
		t.Errorf("game ratio %g below bound", ratio)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	exps := Experiments()
	if len(exps) < 14 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	res, err := RunExperiment("fig2", ExperimentConfig{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || len(res.Charts) == 0 {
		t.Error("fig2 missing tables or charts")
	}
	var sb strings.Builder
	if err := RenderChart(&sb, res.Charts[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "upper") {
		t.Error("chart legend missing")
	}
}

func TestPublicAPISets(t *testing.T) {
	s, err := ParseSet("{1,2,3}")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(NewSet(3, 2, 1)) {
		t.Error("ParseSet mismatch")
	}
	if FullSet(4).Len() != 4 {
		t.Error("FullSet wrong")
	}
}

func TestPublicAPIMetricsAndValidation(t *testing.T) {
	gb := NewGraphBuilder(3)
	gb.AddEdge(0, 1, 1)
	gb.AddEdge(1, 2, 2)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMetric(g); err != nil {
		t.Error(err)
	}
	if g.Distance(0, 2) != 3 {
		t.Errorf("d(0,2) = %g", g.Distance(0, 2))
	}
	u := NewUniform(4, 1)
	if err := CheckMetric(u); err != nil {
		t.Error(err)
	}
	ps := PointScaledCost(ConstantCost(2, 3), []float64{1, 2, 0.5, 1})
	if ps.Cost(1, NewSet(0)) != 6 {
		t.Errorf("scaled cost = %g", ps.Cost(1, NewSet(0)))
	}
}

// TestPublicAPIEngine drives the streaming serving engine through the
// facade: create tenants, stream arrivals, snapshot, read metrics.
func TestPublicAPIEngine(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Algorithm: "pd", Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	space := NewGrid(5, 10)
	costs := PowerLawCost(4, 1, 1)
	for _, id := range []string{"eu-west", "us-east"} {
		if err := eng.CreateTenant(id, space, costs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		tenant := "eu-west"
		if i%2 == 1 {
			tenant = "us-east"
		}
		if err := eng.Serve(tenant, Request{Point: i % 5, Demands: NewSet(i % 4)}); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := eng.SnapshotAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].Tenant != "eu-west" {
		t.Fatalf("unexpected snapshots: %+v", snaps)
	}
	for _, s := range snaps {
		if s.Served != 10 || s.Cost <= 0 {
			t.Errorf("tenant %s: served=%d cost=%g", s.Tenant, s.Served, s.Cost)
		}
		if s.Cost > 3*s.DualTotal+1e-6 {
			t.Errorf("tenant %s: cost %g exceeds 3×dual %g", s.Tenant, s.Cost, s.DualTotal)
		}
	}
	var m Metrics = eng.Metrics()
	if m.Served != 20 || m.Tenants != 2 {
		t.Errorf("metrics: %+v", m)
	}
	single, err := eng.Snapshot("us-east")
	if err != nil || single.Tenant != "us-east" {
		t.Errorf("Snapshot(us-east): %+v, %v", single, err)
	}
	if _, err := eng.Snapshot("nope"); err == nil {
		t.Error("unknown tenant snapshot accepted")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	costs := PowerLawCost(6, 1, 2)
	cl := ClusteredWorkload(rng, costs, 20, 2, 50, 1)
	if cl.PlantedCost <= 0 {
		t.Error("clustered workload lost its planted cost")
	}
	space := NewGrid(8, 100)
	z := ZipfWorkload(rng, space, costs, 25, 3, 1.3)
	if err := z.Instance.Validate(); err != nil {
		t.Error(err)
	}
	bd := BundledWorkload(rng, space, costs, 10)
	for _, r := range bd.Instance.Requests {
		if r.Demands.Len() != 6 {
			t.Error("bundled demand not full")
		}
	}
}
