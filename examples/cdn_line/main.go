// CDN on a line: clustered demand along a backbone.
//
// Edge locations sit on a 1-d backbone (the line metric of Corollary 3).
// Demand arrives in geographic clusters, each interested in its own content
// bundle. The example compares the online algorithms against the planted
// clustered solution and the offline proxy, and shows how RAND-OMFLP's
// expected cost concentrates over seeds.
//
// Run with: go run ./examples/cdn_line
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	omflp "repro"
)

const (
	contents = 9
	demand   = 120
	clusters = 4
	seed     = 7
)

func main() {
	rng := rand.New(rand.NewSource(seed))
	costs := omflp.PowerLawCost(contents, 1, 4)

	// Clustered generates its own 2-d space; for the line variant we
	// project demand onto a 1-d backbone by generating a clustered line
	// manually: cluster centers on the line, requests nearby.
	centers := make([]float64, clusters)
	for i := range centers {
		centers[i] = rng.Float64() * 1000
	}
	var positions []float64
	positions = append(positions, centers...)
	clusterOf := make([]int, 0, demand)
	for i := 0; i < demand; i++ {
		c := rng.Intn(clusters)
		positions = append(positions, centers[c]+rng.NormFloat64()*15)
		clusterOf = append(clusterOf, c)
	}
	space := omflp.NewLine(positions)

	// Each cluster cares about a content bundle.
	bundles := make([]omflp.Set, clusters)
	for c := range bundles {
		ids := rng.Perm(contents)[:3+rng.Intn(contents-3)]
		bundles[c] = omflp.NewSet(ids...)
	}

	in := &omflp.Instance{Space: space, Costs: costs}
	plantedCost := 0.0
	for c := range bundles {
		plantedCost += costs.Cost(c, bundles[c])
	}
	for i := 0; i < demand; i++ {
		c := clusterOf[i]
		ids := bundles[c].IDs()
		rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
		k := 1 + rng.Intn(len(ids))
		in.Requests = append(in.Requests, omflp.Request{
			Point:   clusters + i,
			Demands: omflp.NewSet(ids[:k]...),
		})
		plantedCost += space.Distance(clusters+i, c)
	}

	offline := omflp.BestOffline(in, 40)
	opt := offline.Cost
	optSrc := "offline proxy"
	if plantedCost < opt {
		opt, optSrc = plantedCost, "planted clusters"
	}

	tab := &omflp.Table{
		Title:   fmt.Sprintf("CDN on a line: %d contents, %d clusters, %d requests", contents, clusters, demand),
		Columns: []string{"algorithm", "cost", "ratio vs " + optSrc},
	}
	sol, cPD, err := omflp.Run(omflp.PDFactory(omflp.Options{}), in, seed)
	if err != nil {
		log.Fatal(err)
	}
	tab.AddRow("pd-omflp", cPD, cPD/opt)
	_ = sol

	// RAND over several seeds: mean and spread.
	var costsRand []float64
	for s := int64(0); s < 15; s++ {
		_, c, err := omflp.Run(omflp.RandFactory(omflp.Options{}), in, s)
		if err != nil {
			log.Fatal(err)
		}
		costsRand = append(costsRand, c)
	}
	mean, lo, hi := summarize(costsRand)
	tab.AddRow("rand-omflp (mean of 15 seeds)", mean, mean/opt)
	tab.AddRow("rand-omflp (min..max)", fmt.Sprintf("%.1f..%.1f", lo, hi), "")
	_, cPC, err := omflp.Run(omflp.PerCommodityFactory(nil), in, seed)
	if err != nil {
		log.Fatal(err)
	}
	tab.AddRow("per-commodity", cPC, cPC/opt)
	tab.AddRow(optSrc, opt, 1.0)
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func summarize(xs []float64) (mean, min, max float64) {
	min, max = xs[0], xs[0]
	for _, x := range xs {
		mean += x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return mean / float64(len(xs)), min, max
}
