// Adversary: every algorithm against the Theorem 2 lower-bound game.
//
// The game places singleton requests for a secret random √|S|-subset of
// commodities at one point, under construction cost ⌈|σ|/√|S|⌉. OPT pays 1;
// Theorem 2 proves every online algorithm pays Ω(√|S|) in expectation. The
// example sweeps |S| and prints each algorithm's expected ratio next to the
// proven √|S|/16 bound — and shows the prediction ablation collapsing to
// Θ(|S|) on the full-universe sequence.
//
// Run with: go run ./examples/adversary
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	omflp "repro"
)

func main() {
	tab := &omflp.Table{
		Title:   "Theorem 2 game: expected ratios (OPT = 1)",
		Columns: []string{"|S|", "sqrt(S)/16", "pd", "rand", "per-commodity", "no-prediction"},
	}
	factories := []omflp.Factory{
		omflp.PDFactory(omflp.Options{}),
		omflp.RandFactory(omflp.Options{}),
		omflp.PerCommodityFactory(nil),
		omflp.NoPredictionFactory(nil),
	}
	for _, u := range []int{16, 64, 256, 1024} {
		game, err := omflp.NewTheorem2Game(u)
		if err != nil {
			log.Fatal(err)
		}
		row := []interface{}{u, math.Sqrt(float64(u)) / 16}
		for fi, f := range factories {
			ratio, _, _ := game.ExpectedRatio(f, int64(fi+1), 10)
			row = append(row, ratio)
		}
		tab.AddRow(row...)
	}
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Prediction matters on longer sequences: request *all* |S| commodities and")
	fmt.Println("the no-prediction variants pay Θ(|S|) while PD freezes at ~2·sqrt(|S|):")
	fmt.Println()

	tab2 := &omflp.Table{
		Title:   "full-universe sequence at one point (OPT = sqrt(|S|))",
		Columns: []string{"|S|", "pd", "pd(no-prediction)", "rand", "rand(no-prediction)"},
	}
	for _, u := range []int{16, 64, 256} {
		costs := omflp.CeilSqrtCost(u)
		in := &omflp.Instance{Space: omflp.SinglePoint(), Costs: costs}
		for e := 0; e < u; e++ {
			in.Requests = append(in.Requests, omflp.Request{Point: 0, Demands: omflp.NewSet(e)})
		}
		opt := math.Sqrt(float64(u))
		row := []interface{}{u}
		for _, f := range []omflp.Factory{
			omflp.PDFactory(omflp.Options{}),
			omflp.PDFactory(omflp.Options{DisablePrediction: true}),
			omflp.RandFactory(omflp.Options{}),
			omflp.RandFactory(omflp.Options{DisablePrediction: true}),
		} {
			_, c, err := omflp.Run(f, in, 3)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, c/opt)
		}
		tab2.AddRow(row...)
	}
	if err := tab2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
