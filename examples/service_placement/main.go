// Service placement: the paper's motivating scenario (Section 1).
//
// A provider operates a network (here: a random weighted graph whose
// shortest-path closure is the metric). Clients appear over time at network
// nodes and request subsets of a service catalog. Instantiating a VM that
// bundles several services costs less than separate VMs (subadditive
// construction cost), and a client talking to one VM offering several of its
// services pays a single communication path.
//
// The example streams a Zipf-popular workload through PD-OMFLP, RAND-OMFLP
// and the per-commodity baseline (one independent facility-location instance
// per service — no bundling), then compares everything against the offline
// greedy + local-search proxy.
//
// Run with: go run ./examples/service_placement
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	omflp "repro"
)

const (
	nodes    = 24
	services = 12
	clients  = 150
	seed     = 2020 // SPAA 2020
)

func main() {
	rng := rand.New(rand.NewSource(seed))

	// Build a connected service network: ring + random chords.
	gb := omflp.NewGraphBuilder(nodes)
	for i := 0; i < nodes; i++ {
		gb.AddEdge(i, (i+1)%nodes, 1+rng.Float64()*4)
	}
	for e := 0; e < nodes; e++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a != b {
			gb.AddEdge(a, b, 2+rng.Float64()*8)
		}
	}
	network, err := gb.Build()
	if err != nil {
		log.Fatal(err)
	}

	// VM cost: 5·√(#services) — bundling all 12 services costs ~17, far
	// less than 12 separate VMs at 5 each.
	costs := omflp.PowerLawCost(services, 1, 5)

	// Zipf-popular services: a few hot ones, a long tail.
	tr := omflp.ZipfWorkload(rng, network, costs, clients, 5, 1.3)
	in := tr.Instance

	offline := omflp.BestOffline(in, 40)

	tab := &omflp.Table{
		Title:   fmt.Sprintf("service placement: %d nodes, %d services, %d clients", nodes, services, clients),
		Columns: []string{"algorithm", "cost", "facilities", "large facilities", "ratio vs offline"},
	}
	for _, f := range []omflp.Factory{
		omflp.PDFactory(omflp.Options{}),
		omflp.RandFactory(omflp.Options{}),
		omflp.PerCommodityFactory(nil),
	} {
		sol, c, err := omflp.Run(f, in, seed)
		if err != nil {
			log.Fatal(err)
		}
		large := 0
		for _, fac := range sol.Facilities {
			if fac.Config.Len() == services {
				large++
			}
		}
		tab.AddRow(f.Name, c, len(sol.Facilities), large, c/offline.Cost)
	}
	tab.AddRow(offline.Name, offline.Cost, len(offline.Solution.Facilities), "-", 1.0)
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nNote how the per-commodity baseline opens many singleton VMs while")
	fmt.Println("PD-OMFLP invests in shared large facilities once demand accumulates —")
	fmt.Println("the bundling advantage the paper's model formalizes.")
}
