// Quickstart: the smallest end-to-end use of the public API.
//
// Three clients on a line ask for services out of a catalog of four; the
// deterministic PD-OMFLP decides online where to open facilities and which
// services to offer at each, and we compare its cost against the exact
// offline optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	omflp "repro"
)

func main() {
	// A line metric with four possible locations.
	space := omflp.NewLine([]float64{0, 2, 5, 9})

	// Construction cost g(|σ|) = 3·√|σ|: strictly subadditive, so
	// bundling services at one facility is cheaper than splitting.
	costs := omflp.PowerLawCost(4, 1, 3)

	alg := omflp.NewPD(space, costs, omflp.Options{})

	// Requests arrive online; Serve decides irrevocably.
	requests := []omflp.Request{
		{Point: 0, Demands: omflp.NewSet(0, 1)},
		{Point: 1, Demands: omflp.NewSet(1)},
		{Point: 3, Demands: omflp.NewSet(2, 3)},
		{Point: 2, Demands: omflp.NewSet(0, 2)},
	}
	for i, r := range requests {
		alg.Serve(r)
		fmt.Printf("request %d at point %d demanding %v served; facilities now: %d\n",
			i, r.Point, r.Demands, len(alg.Solution().Facilities))
	}

	in := &omflp.Instance{Space: space, Costs: costs, Requests: requests}
	sol := alg.Solution()
	if err := sol.Verify(in); err != nil {
		log.Fatalf("infeasible solution: %v", err)
	}

	fmt.Println("\nopened facilities:")
	for _, f := range sol.Facilities {
		fmt.Printf("  point %d offering %v (cost %.2f)\n",
			f.Point, f.Config, costs.Cost(f.Point, f.Config))
	}

	online := sol.Cost(in)
	offline := omflp.ExactSmall(in, 4)
	tab := newSummary(online, offline.Cost)
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func newSummary(online, offline float64) *omflp.Table {
	tab := &omflp.Table{
		Title:   "quickstart summary",
		Columns: []string{"solution", "cost", "ratio"},
	}
	tab.AddRow("PD-OMFLP (online)", online, online/offline)
	tab.AddRow("exact offline OPT", offline, 1.0)
	return tab
}
