// Heavy commodities: the closing-remarks extension (Section 5).
//
// Condition 1 demands that no single commodity dominates the construction
// cost. This example breaks it on purpose: one "heavy" service (think: a
// GPU-bound model server) costs 50× the per-service share of a full bundle.
// Plain PD-OMFLP's large facilities always include the heavy service and pay
// its premium at every prediction; the HeavyAware wrapper detects the heavy
// commodity, excludes it from large facilities, and serves it with its own
// single-commodity facility-location instance — the strategy the paper
// sketches in its closing remarks.
//
// Run with: go run ./examples/heavy_commodities
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	omflp "repro"
)

const (
	services = 8   // service 7 is heavy
	premium  = 150 // cost added to any configuration containing it
	clients  = 80
	seed     = 5
)

// bundleCost is |σ| + premium·[heavy ∈ σ]: subadditive, but Condition 1
// fails for the heavy service.
type bundleCost struct{}

func (bundleCost) Universe() int { return services }
func (bundleCost) Name() string  { return "bundle+heavy-premium" }
func (bundleCost) Cost(m int, sigma omflp.Set) float64 {
	k := sigma.Len()
	if k == 0 {
		return 0
	}
	c := float64(k)
	if sigma.Contains(services - 1) {
		c += premium
	}
	return c
}

func main() {
	rng := rand.New(rand.NewSource(seed))
	space := omflp.NewGrid(16, 30)
	costs := bundleCost{}

	// Demand: light bundles; the heavy service appears in 10% of requests.
	in := &omflp.Instance{Space: space, Costs: costs}
	light := omflp.NewSet(0, 1, 2, 3, 4, 5, 6)
	for i := 0; i < clients; i++ {
		ids := light.IDs()
		rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
		d := omflp.NewSet(ids[:1+rng.Intn(4)]...)
		if i%10 == 0 {
			d = d.With(services - 1)
		}
		in.Requests = append(in.Requests, omflp.Request{Point: rng.Intn(space.Len()), Demands: d})
	}

	offline := omflp.BestOffline(in, 40)

	tab := &omflp.Table{
		Title:   "heavy commodity: plain PD vs the Section 5 extension",
		Columns: []string{"algorithm", "cost", "heavy-in-bundle facilities", "ratio vs offline"},
	}
	for _, f := range []omflp.Factory{
		omflp.PDFactory(omflp.Options{}),
		omflp.HeavyFactory(omflp.Options{}, 3),
	} {
		sol, c, err := omflp.Run(f, in, seed)
		if err != nil {
			log.Fatal(err)
		}
		mixed := 0
		for _, fac := range sol.Facilities {
			if fac.Config.Contains(services-1) && fac.Config.Len() > 1 {
				mixed++
			}
		}
		tab.AddRow(f.Name, c, mixed, c/offline.Cost)
	}
	tab.AddRow(offline.Name, offline.Cost, "-", 1.0)
	if err := tab.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	ha := omflp.NewHeavyAware(space, costs, omflp.Options{}, 3)
	lightIDs, heavyIDs := ha.HeavySplit()
	fmt.Printf("\nHeavyAware classified %d services as light %v and %v as heavy —\n",
		len(lightIDs), lightIDs, heavyIDs)
	fmt.Println("its large facilities bundle only the light ones, so the premium is paid")
	fmt.Println("only where the heavy service is genuinely demanded.")
}
