// Command omflp-lint runs the repository's custom static analyzers — the
// determinism, tolerance and state-codec invariants described in
// internal/analysis — over a set of packages.
//
// Standalone (the usual way; CI gates on this):
//
//	go run ./cmd/omflp-lint ./...
//
// As a vet tool (unit-at-a-time, sharing go vet's caching and test
// packages excluded from determinism findings):
//
//	go build -o /tmp/omflp-lint ./cmd/omflp-lint
//	go vet -vettool=/tmp/omflp-lint ./...
//
// Exit status is 0 on a clean tree and nonzero when any analyzer reports a
// finding. Findings are suppressed line-by-line with the omflp: annotations
// (orderinvariant, floatexact, wallclock, nostate); see CONTRIBUTING.md for
// the contract each annotation asserts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

const version = "0.1.0"

func main() {
	// The go vet driver probes its tool with -V=full (version for the build
	// cache key) and -flags (registered flags), then invokes it once per
	// package with a *.cfg file. Divert those invocations before normal
	// flag parsing.
	if len(os.Args) >= 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V"):
			fmt.Printf("omflp-lint version %s\n", version)
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(vetUnit(os.Args[1]))
		}
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: omflp-lint [-analyzers a,b] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			suppress := "not suppressable"
			if m := a.Marker(); m != "" {
				suppress = "suppress with //" + m
			}
			fmt.Printf("%-12s %s (%s)\n", a.Name, a.Doc, suppress)
		}
		return
	}
	if *only != "" {
		var sel []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			found := false
			for _, a := range analyzers {
				if a.Name == strings.TrimSpace(name) {
					sel = append(sel, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "omflp-lint: unknown analyzer %q (see -list)\n", name)
				os.Exit(2)
			}
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omflp-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omflp-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "omflp-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
