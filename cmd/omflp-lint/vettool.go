package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// vetConfig is the per-package unit description the go command hands a
// -vettool (the same JSON cmd/go feeds x/tools' unitchecker). Dependencies
// arrive as compiler export data in PackageFile, so a unit check never
// re-parses the dependency graph.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit runs the analyzer suite over one vet unit and returns the process
// exit code: 0 clean, 2 findings (the unitchecker convention — the go
// command treats any nonzero exit as a failed check and relays stderr).
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omflp-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "omflp-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The tool's analyzers export no facts, but the driver still expects the
	// facts file to exist for caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "omflp-lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omflp-lint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer:    &vetImporter{imp: imp, importMap: cfg.ImportMap},
		FakeImportC: true,
		GoVersion:   cfg.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "omflp-lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "omflp-lint: %v\n", err)
		return 1
	}
	// Unlike the standalone driver (which loads non-test files only), vet
	// units for test packages include _test.go files; the exact-equality
	// differential oracles living there are exempt from the determinism
	// rules by design.
	n := 0
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintln(os.Stderr, d)
		n++
	}
	if n > 0 {
		return 2
	}
	return 0
}

// vetImporter applies the unit's ImportMap (vendor and module resolution)
// before delegating to the export-data importer.
type vetImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := v.importMap[path]; ok {
		path = mapped
	}
	return v.imp.Import(path)
}
