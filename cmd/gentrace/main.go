// Command gentrace generates OMFLP workload traces as JSON files for
// `omflp replay` (and any external tooling).
//
// Usage:
//
//	gentrace -kind uniform|zipf|bundled|singles [-n 100] [-s 16] [-points 20]
//	         [-x 1.0] [-seed 1] [-o trace.json]
//
// The cost model is the class-C power law g_x(k) = k^{x/2} (uniform across
// points, so the JSON by-size table is lossless); -kind singles uses the
// Theorem 2 cost ⌈k/√|S|⌉ on a single point instead.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cost"
	"repro/internal/metric"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gentrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gentrace", flag.ContinueOnError)
	var (
		kind   = fs.String("kind", "uniform", "workload: uniform, zipf, bundled, singles")
		n      = fs.Int("n", 100, "number of requests")
		s      = fs.Int("s", 16, "universe size |S|")
		points = fs.Int("points", 20, "points in the metric space")
		x      = fs.Float64("x", 1.0, "class-C cost exponent in [0,2]")
		seed   = fs.Int64("seed", 1, "random seed")
		out    = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var tr *workload.Trace
	switch *kind {
	case "uniform":
		space := metric.RandomEuclidean(rng, *points, 2, 100)
		tr = workload.Uniform(rng, space, cost.PowerLaw(*s, *x, 1), *n, *s/2+1)
	case "zipf":
		space := metric.RandomEuclidean(rng, *points, 2, 100)
		tr = workload.Zipf(rng, space, cost.PowerLaw(*s, *x, 1), *n, *s/2+1, 1.4)
	case "bundled":
		space := metric.RandomEuclidean(rng, *points, 2, 100)
		tr = workload.Bundled(rng, space, cost.PowerLaw(*s, *x, 1), *n)
	case "singles":
		tr = workload.SinglePointSingles(rng, cost.CeilSqrt(*s), *n)
	default:
		return fmt.Errorf("unknown workload kind %q", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteJSON(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "gentrace: wrote %s (%d requests, |S|=%d) to %s\n",
			tr.Name, len(tr.Instance.Requests), tr.Instance.Universe(), *out)
	}
	return nil
}
