package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestGentraceKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"uniform", "zipf", "bundled", "singles"} {
		out := filepath.Join(dir, kind+".json")
		args := []string{"-kind", kind, "-n", "10", "-s", "9", "-points", "5", "-o", out}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := workload.ReadJSON(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: round trip: %v", kind, err)
		}
		if len(tr.Instance.Requests) == 0 {
			t.Errorf("%s: empty trace", kind)
		}
		if err := tr.Instance.Validate(); err != nil {
			t.Errorf("%s: invalid instance: %v", kind, err)
		}
	}
}

func TestGentraceSinglesCapsAtUniverse(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "s.json")
	if err := run([]string{"-kind", "singles", "-n", "100", "-s", "9", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := workload.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Instance.Requests) != 9 {
		t.Errorf("singles produced %d requests, want 9", len(tr.Instance.Requests))
	}
}

func TestGentraceErrors(t *testing.T) {
	if err := run([]string{"-kind", "bogus"}); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run([]string{"-bad-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-o", "/nonexistent-dir/x.json"}); err == nil {
		t.Error("unwritable output accepted")
	}
}
