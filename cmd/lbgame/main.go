// Command lbgame explores the Theorem 2 lower-bound game interactively from
// the command line: it plays the single-point adversary against a chosen
// algorithm, printing the per-request trace (the Figure 1 timeline) and the
// final ratio against OPT = 1.
//
// Usage:
//
//	lbgame [-s 64] [-x -1] [-alg pd|rand|per-commodity|no-prediction]
//	       [-seed 1] [-reps 10] [-trace]
//
// -s must be a perfect square. -x ≥ 0 switches to the Theorem 18 class-C
// cost g_x(k) = k^{x/2} instead of ⌈k/√|S|⌉.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/online"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbgame:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lbgame", flag.ContinueOnError)
	var (
		s     = fs.Int("s", 64, "universe size |S| (perfect square)")
		x     = fs.Float64("x", -1, "class-C exponent; negative = Theorem 2 cost ⌈k/√|S|⌉")
		alg   = fs.String("alg", "pd", "algorithm: pd, rand, per-commodity, no-prediction")
		seed  = fs.Int64("seed", 1, "random seed")
		reps  = fs.Int("reps", 10, "repetitions for the expected ratio")
		trace = fs.Bool("trace", false, "print the per-request trace of one run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var game *lowerbound.Game
	var err error
	if *x >= 0 {
		game, err = lowerbound.NewClassCGame(*s, *x)
	} else {
		game, err = lowerbound.NewTheorem2Game(*s)
	}
	if err != nil {
		return err
	}

	var factory online.Factory
	switch *alg {
	case "pd":
		factory = core.PDFactory(core.Options{})
	case "rand":
		factory = core.RandFactory(core.Options{})
	case "per-commodity":
		factory = baseline.PerCommodityPDFactory(nil)
	case "no-prediction":
		factory = baseline.NoPredictionFactory(nil)
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}

	ratio, rounds, predicted := game.ExpectedRatio(factory, *seed, *reps)
	tab := report.NewTable(fmt.Sprintf("Theorem 2 game: |S|=%d, alg=%s", *s, *alg),
		"quantity", "value")
	tab.AddRow("OPT per run", game.OptCost())
	tab.AddRow("expected ratio", ratio)
	tab.AddRow("sqrt(S)/16 lower bound", lowerbound.TheoreticalLowerBound(*s))
	tab.AddRow("sqrt(S)", math.Sqrt(float64(*s)))
	tab.AddRow("mean opening rounds X", rounds)
	tab.AddRow("mean predicted commodities T", predicted)
	if err := tab.Render(stdout); err != nil {
		return err
	}

	if *trace {
		rng := rand.New(rand.NewSource(*seed))
		res := game.Play(factory, rng, *seed)
		tt := report.NewTable("one run, step by step",
			"step", "requested", "covered", "facilities")
		for _, st := range res.Trace {
			tt.AddRow(st.Step, st.RequestedSoFar, st.CoveredSoFar, st.FacilitiesSoFar)
		}
		fmt.Fprintln(stdout)
		if err := tt.Render(stdout); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nrun cost %.4g vs OPT %.4g → ratio %.4g\n", res.AlgCost, res.OptCost, res.Ratio)
	}
	return nil
}
