package main

import (
	"strings"
	"testing"
)

func TestLBGameDefault(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-s", "16", "-reps", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Theorem 2 game", "expected ratio", "sqrt(S)/16"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestLBGameTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-s", "16", "-reps", "2", "-trace"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "step by step") {
		t.Errorf("trace output missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "run cost") {
		t.Error("per-run summary missing")
	}
}

func TestLBGameClassC(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-s", "16", "-x", "1", "-reps", "2", "-alg", "rand"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alg=rand") {
		t.Errorf("wrong algorithm header:\n%s", out.String())
	}
}

func TestLBGameAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"pd", "rand", "per-commodity", "no-prediction"} {
		var out strings.Builder
		if err := run([]string{"-s", "16", "-reps", "2", "-alg", alg}, &out); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestLBGameErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-s", "15"}, &out); err == nil {
		t.Error("non-square |S| accepted")
	}
	if err := run([]string{"-alg", "bogus"}, &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
