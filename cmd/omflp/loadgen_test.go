package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// captureStdout redirects os.Stdout around fn (loadgen writes its report
// there) and returns what was written.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errc := make(chan error, 1)
	go func() { errc <- fn() }()
	ferr := <-errc
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if ferr != nil {
		t.Fatalf("loadgen: %v\noutput: %s", ferr, out)
	}
	return out
}

// TestLoadgenSpawnedServer runs loadgen end-to-end against a server it
// spawns itself, in both transport modes, and checks the report and the
// BENCH_serve.json artifact.
func TestLoadgenSpawnedServer(t *testing.T) {
	dir := t.TempDir()
	for _, mode := range []string{"tcp", "http"} {
		out := captureStdout(t, func() error {
			return run([]string{"loadgen", "-mode", mode, "-arrivals", "400",
				"-tenants", "3", "-conc", "2", "-points", "8", "-universe", "4",
				"-seed", "3", "-bench-out", dir, "-quiet"})
		})
		var rep struct {
			Mode           string  `json:"mode"`
			Arrivals       int     `json:"arrivals"`
			ArrivalsPerSec float64 `json:"arrivals_per_sec"`
			RequestP99     float64 `json:"request_p99_ms"`
		}
		if err := json.Unmarshal(out, &rep); err != nil {
			t.Fatalf("%s: report not JSON: %v\n%s", mode, err, out)
		}
		if rep.Mode != mode || rep.Arrivals != 400 || rep.ArrivalsPerSec <= 0 {
			t.Errorf("%s report = %+v", mode, rep)
		}
		if mode == "http" && rep.RequestP99 <= 0 {
			t.Errorf("http mode reported no request latency: %+v", rep)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		Modes map[string]json.RawMessage `json:"modes"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatal(err)
	}
	if len(bench.Modes) != 2 {
		t.Errorf("BENCH_serve.json has modes %v, want tcp and http", bench.Modes)
	}
}

// TestLoadgenTraceReproducesGolden is the network acceptance contract at the
// CLI level: driving a daemon with the smoke trace over HTTP and over TCP
// must yield the exact snapshot artifact the stdin path produces (the
// committed golden file).
func TestLoadgenTraceReproducesGolden(t *testing.T) {
	want, err := os.ReadFile(smokeGolden)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"http", "tcp"} {
		srv, err := server.New(server.Config{
			HTTPAddr: "127.0.0.1:0",
			TCPAddr:  "127.0.0.1:0",
			Engine:   engine.Config{Algorithm: "pd", Shards: 4, Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		addr := srv.HTTPAddr()
		if mode == "tcp" {
			addr = srv.TCPAddr()
		}
		captureStdout(t, func() error {
			return run([]string{"loadgen", "-mode", mode, "-addr", addr,
				"-http-addr", srv.HTTPAddr(), "-trace", smokeTrace,
				"-tenants", "3", "-conc", "2", "-quiet"})
		})
		resp, err := http.Get("http://" + srv.HTTPAddr() + "/v1/snapshots")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(got, want) {
			t.Errorf("%s: snapshots from the network path differ from %s", mode, smokeGolden)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}
}

func TestLoadgenErrors(t *testing.T) {
	if err := run([]string{"loadgen", "-mode", "carrier-pigeon"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run([]string{"loadgen", "-trace", "/does/not/exist.json"}); err == nil {
		t.Error("missing trace accepted")
	}
}

// TestLoadgenDistAndRate: the zipf/bundled workload mixes and the open-loop
// -rate schedule drive a spawned server end to end; the report must carry
// the mix and offered rate, and a paced run must not beat its own schedule.
func TestLoadgenDistAndRate(t *testing.T) {
	for _, tc := range []struct {
		dist string
		mode string
		rate string
	}{
		{dist: "zipf", mode: "tcp", rate: "0"},
		{dist: "bundled", mode: "http", rate: "0"},
		{dist: "uniform", mode: "tcp", rate: "2000"},
		{dist: "zipf", mode: "http", rate: "2000"},
	} {
		out := captureStdout(t, func() error {
			return run([]string{"loadgen", "-mode", tc.mode, "-dist", tc.dist,
				"-arrivals", "300", "-tenants", "2", "-conc", "2", "-points", "8",
				"-universe", "4", "-seed", "5", "-rate", tc.rate, "-quiet"})
		})
		var rep struct {
			Dist           string  `json:"dist"`
			Arrivals       int     `json:"arrivals"`
			OfferedRate    float64 `json:"offered_rate_per_sec"`
			ArrivalsPerSec float64 `json:"arrivals_per_sec"`
			Elapsed        float64 `json:"elapsed_seconds"`
		}
		if err := json.Unmarshal(out, &rep); err != nil {
			t.Fatalf("%s/%s: report not JSON: %v\n%s", tc.dist, tc.mode, err, out)
		}
		if rep.Dist != tc.dist || rep.Arrivals != 300 || rep.ArrivalsPerSec <= 0 {
			t.Errorf("%s/%s: report %+v", tc.dist, tc.mode, rep)
		}
		if tc.rate != "0" {
			// 300 arrivals at 2000/s is a 150ms schedule; a paced run
			// cannot finish meaningfully faster than its schedule.
			if rep.OfferedRate != 2000 {
				t.Errorf("%s/%s: offered rate %g, want 2000", tc.dist, tc.mode, rep.OfferedRate)
			}
			if rep.Elapsed < 0.10 {
				t.Errorf("%s/%s: open-loop run finished in %.0fms, faster than its own 150ms schedule",
					tc.dist, tc.mode, rep.Elapsed*1e3)
			}
		}
	}
}

// TestLoadgenBadDist: unknown mixes and negative rates must be rejected.
func TestLoadgenBadDist(t *testing.T) {
	if err := run([]string{"loadgen", "-dist", "nope", "-arrivals", "1"}); err == nil {
		t.Error("unknown -dist accepted")
	}
	if err := run([]string{"loadgen", "-rate", "-1", "-arrivals", "1"}); err == nil {
		t.Error("negative -rate accepted")
	}
	if err := run([]string{"loadgen", "-dist", "zipf", "-zipf-s", "0.5", "-arrivals", "1"}); err == nil {
		t.Error("-zipf-s <= 1 accepted")
	}
}
