package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/metric"
	"repro/internal/workload"
)

// cmdCkptBench benchmarks checkpoint capture and restore across format
// versions: for each history length it runs the same trace through two
// engines — one sealing-disabled (v1 capture: full arrival history) and one
// sealing at -seal-every (v2 capture: base state + tail segment) — then
// times a restore of each checkpoint into a fresh engine and verifies every
// restored snapshot against the source engine's, byte for byte.
//
// The gate encodes the v2 design claim: restore work must be flat in
// history length. Concretely (a) a v2 restore replays at most -seal-every
// arrivals at every history length — the exact counter, immune to timer
// noise — and (b) at the deepest history the v2 restore is cheaper on the
// wall clock than the v1 full replay. Failing either exits non-zero, which
// is what the CI step relies on.
func cmdCkptBench(args []string) error {
	fs := flag.NewFlagSet("ckpt-bench", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "directory to write BENCH_checkpoint.json (empty: stdout only)")
		histories = fs.String("histories", "1000,100000", "comma-separated history lengths (arrivals per run)")
		sealEvery = fs.Int("seal-every", 1000, "v2 sealing threshold (re-base once the tail reaches N)")
		algos     = fs.String("algos", "pd,rand", "comma-separated algorithms to bench")
		points    = fs.Int("points", 20, "points in the synthetic metric space")
		universe  = fs.Int("universe", 6, "universe size |S|")
		shards    = fs.Int("shards", 4, "engine shards")
		seed      = fs.Int64("seed", 1, "workload + engine seed")
		quiet     = fs.Bool("quiet", false, "suppress progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sealEvery < 1 {
		return fmt.Errorf("ckpt-bench: -seal-every must be >= 1")
	}
	var lengths []int
	for _, s := range strings.Split(*histories, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("ckpt-bench: bad history length %q", s)
		}
		lengths = append(lengths, n)
	}

	doc := ckptBenchDoc{
		Benchmark: "checkpoint restore: v1 full replay vs v2 base state + tail segment",
		SealEvery: *sealEvery,
		Algos:     map[string]*ckptBenchAlgo{},
		GatePass:  true,
	}
	for _, algo := range strings.Split(*algos, ",") {
		algo = strings.TrimSpace(algo)
		res := &ckptBenchAlgo{}
		doc.Algos[algo] = res
		for _, h := range lengths {
			row, err := ckptBenchRun(algo, h, *sealEvery, *points, *universe, *shards, *seed)
			if err != nil {
				return fmt.Errorf("ckpt-bench: %s/%d: %v", algo, h, err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr,
					"ckpt-bench: %s n=%-7d v1 %7d B restore %7.1fms (replayed %d)   v2 %7d B restore %7.1fms (replayed %d)\n",
					algo, h, row.V1.Bytes, row.V1.RestoreMs, row.V1.Replayed, row.V2.Bytes, row.V2.RestoreMs, row.V2.Replayed)
			}
			res.Histories = append(res.Histories, row)
		}
		// Gate (a): v2 replay work flat in history — bounded by seal-every
		// at every length.
		for _, row := range res.Histories {
			if row.V2.Replayed > *sealEvery {
				res.GateFailures = append(res.GateFailures, fmt.Sprintf(
					"v2 restore at history %d replayed %d arrivals > seal-every %d",
					row.Arrivals, row.V2.Replayed, *sealEvery))
			}
			if row.V1.Replayed != row.Arrivals {
				res.GateFailures = append(res.GateFailures, fmt.Sprintf(
					"v1 restore at history %d replayed %d arrivals, want the full %d",
					row.Arrivals, row.V1.Replayed, row.Arrivals))
			}
		}
		// Gate (b): at the deepest history the v2 restore must beat the v1
		// full replay on the wall clock (only judged once the v1 time is
		// far above timer noise).
		deep := res.Histories[len(res.Histories)-1]
		if deep.V1.RestoreMs > 50 && deep.V2.RestoreMs >= deep.V1.RestoreMs {
			res.GateFailures = append(res.GateFailures, fmt.Sprintf(
				"v2 restore at history %d took %.1fms, not faster than v1's %.1fms",
				deep.Arrivals, deep.V2.RestoreMs, deep.V1.RestoreMs))
		}
		if len(res.GateFailures) > 0 {
			doc.GatePass = false
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(*out, "BENCH_checkpoint.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if !doc.GatePass {
		for algo, res := range doc.Algos {
			for _, f := range res.GateFailures {
				fmt.Fprintf(os.Stderr, "ckpt-bench: GATE FAILED (%s): %s\n", algo, f)
			}
		}
		return fmt.Errorf("ckpt-bench: v2 restore gate failed")
	}
	return nil
}

type ckptBenchDoc struct {
	Benchmark string                    `json:"benchmark"`
	SealEvery int                       `json:"seal_every"`
	Algos     map[string]*ckptBenchAlgo `json:"algos"`
	GatePass  bool                      `json:"gate_pass"`
}

type ckptBenchAlgo struct {
	Histories    []ckptBenchRow `json:"histories"`
	GateFailures []string       `json:"gate_failures,omitempty"`
}

type ckptBenchRow struct {
	Arrivals int           `json:"arrivals"`
	V1       ckptBenchSide `json:"v1"`
	V2       ckptBenchSide `json:"v2"`
}

type ckptBenchSide struct {
	Bytes     int     `json:"bytes"`
	CaptureMs float64 `json:"capture_ms"`
	RestoreMs float64 `json:"restore_ms"`
	Replayed  int     `json:"replayed"`
	// TailArrivals is the checkpoint's replay obligation (== Replayed on a
	// successful restore); kept separately so the artifact is self-checking.
	TailArrivals int `json:"tail_arrivals"`
}

// ckptBenchRun drives one (algorithm, history length) cell: capture both
// formats from identical runs, time both restores, verify both restored
// snapshot sets against the source.
func ckptBenchRun(algo string, arrivals, sealEvery, points, universe, shards int, seed int64) (ckptBenchRow, error) {
	row := ckptBenchRow{Arrivals: arrivals}
	rng := rand.New(rand.NewSource(seed))
	space := metric.RandomEuclidean(rng, points, 2, 100)
	tr := workload.Uniform(rng, space, cost.PowerLaw(universe, 1, 1), arrivals, universe/2+1)

	base := engine.Config{Algorithm: algo, Shards: shards, Seed: seed, RecordArrivals: true}

	capture := func(sealCfg int, take func(*engine.Engine) (*engine.Checkpoint, error)) (*engine.Checkpoint, []byte, float64, error) {
		cfg := base
		cfg.SealEvery = sealCfg
		e, err := engine.NewChecked(cfg)
		if err != nil {
			return nil, nil, 0, err
		}
		defer e.Close()
		if _, err := e.ReplayTrace(tr, 1); err != nil {
			return nil, nil, 0, err
		}
		e.Drain()
		start := time.Now()
		ck, err := take(e)
		if err != nil {
			return nil, nil, 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1e3
		golden, err := snapshotBytes(e)
		if err != nil {
			return nil, nil, 0, err
		}
		return ck, golden, ms, nil
	}

	ckV1, golden, msV1, err := capture(-1, (*engine.Engine).CheckpointV1)
	if err != nil {
		return row, err
	}
	ckV2, goldenV2, msV2, err := capture(sealEvery, (*engine.Engine).Checkpoint)
	if err != nil {
		return row, err
	}
	if string(golden) != string(goldenV2) {
		return row, fmt.Errorf("sealing changed the served state: snapshots diverged between capture engines")
	}

	restore := func(ck *engine.Checkpoint) (engine.RestoreStats, float64, error) {
		cfg := base
		// Match the restore engine's sealing to the format under test: the
		// v1 baseline must measure a pure full replay, not replay plus the
		// v2 seal marshals it would trigger every sealEvery arrivals.
		if ck.Version == engine.CheckpointVersionV1 {
			cfg.SealEvery = -1
		} else {
			cfg.SealEvery = sealEvery
		}
		e, err := engine.NewChecked(cfg)
		if err != nil {
			return engine.RestoreStats{}, 0, err
		}
		defer e.Close()
		start := time.Now()
		stats, err := e.Restore(ck)
		if err != nil {
			return stats, 0, err
		}
		e.Drain()
		ms := float64(time.Since(start).Microseconds()) / 1e3
		got, err := snapshotBytes(e)
		if err != nil {
			return stats, ms, err
		}
		if string(got) != string(golden) {
			return stats, ms, fmt.Errorf("restored snapshots diverge from the source engine (version %d)", ck.Version)
		}
		return stats, ms, nil
	}

	statsV1, restoreMsV1, err := restore(ckV1)
	if err != nil {
		return row, err
	}
	statsV2, restoreMsV2, err := restore(ckV2)
	if err != nil {
		return row, err
	}

	sizeOf := func(ck *engine.Checkpoint) (int, error) {
		data, err := json.Marshal(ck)
		return len(data), err
	}
	b1, err := sizeOf(ckV1)
	if err != nil {
		return row, err
	}
	b2, err := sizeOf(ckV2)
	if err != nil {
		return row, err
	}
	row.V1 = ckptBenchSide{Bytes: b1, CaptureMs: msV1, RestoreMs: restoreMsV1,
		Replayed: statsV1.Replayed, TailArrivals: ckV1.TailArrivals()}
	row.V2 = ckptBenchSide{Bytes: b2, CaptureMs: msV2, RestoreMs: restoreMsV2,
		Replayed: statsV2.Replayed, TailArrivals: ckV2.TailArrivals()}
	return row, nil
}

func snapshotBytes(e *engine.Engine) ([]byte, error) {
	snaps, err := e.SnapshotAll()
	if err != nil {
		return nil, err
	}
	return json.Marshal(snaps)
}
