package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/metric"
	"repro/internal/workload"
)

// cmdCkptBench benchmarks checkpoint capture and restore across format
// versions: for each history length it runs the same trace through two
// engines — one sealing-disabled (v1 capture: full arrival history) and one
// sealing at -seal-every (v2 capture: base state + tail segment) — then
// times a restore of each checkpoint into a fresh engine (v2 through the
// flate-compressed wire format) and verifies every restored snapshot
// against the source engine's, byte for byte.
//
// The gates encode what v2 buys over v1. (a) Restore replay work is flat in
// history: a v2 restore replays at most -seal-every arrivals at every
// length — the exact counter, immune to timer noise — while v1 replays
// everything. (b) Capture (state assembly) cost is flat in history: at the
// deepest history a v2 Checkpoint() call (cached base bytes + bounded tail)
// must beat the v1 capture, which re-marshals the full arrival history
// every time. (c) The compressed v2 artifact must be smaller on disk than
// even v1's raw document at every length, so base-state compression has
// provably paid for the state bytes v2 carries. Failing any gate exits
// non-zero, which is what the CI step relies on.
//
// Two wall-clock columns are reported but deliberately NOT gated, both
// bottlenecked by the same O(history) serialized-state growth tracked in
// ROADMAP.md rather than by the checkpoint format: restore (the
// event-driven PD serve loop replays arrivals faster than JSON state
// decodes, so a v1 full replay can beat a v2 base-state load) and encode_ms
// (the wire encoding WriteFile adds per tick — JSON marshal plus the flate
// of every base state, which scales with state size). The flat replay and
// capture counters of gates (a)/(b) are the invariants that survive
// serve-speed changes.
func cmdCkptBench(args []string) (retErr error) {
	fs := flag.NewFlagSet("ckpt-bench", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "directory to write BENCH_checkpoint.json (empty: stdout only)")
		histories = fs.String("histories", "1000,100000", "comma-separated history lengths (arrivals per run)")
		sealEvery = fs.Int("seal-every", 1000, "v2 sealing threshold (re-base once the tail reaches N)")
		algos     = fs.String("algos", "pd,rand", "comma-separated algorithms to bench")
		points    = fs.Int("points", 20, "points in the synthetic metric space")
		universe  = fs.Int("universe", 6, "universe size |S|")
		shards    = fs.Int("shards", 4, "engine shards")
		seed      = fs.Int64("seed", 1, "workload + engine seed")
		quiet     = fs.Bool("quiet", false, "suppress progress on stderr")
	)
	var prof profileFlags
	prof.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.startDeferred(&retErr)
	if err != nil {
		return err
	}
	defer stopProf()
	if *sealEvery < 1 {
		return fmt.Errorf("ckpt-bench: -seal-every must be >= 1")
	}
	var lengths []int
	for _, s := range strings.Split(*histories, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("ckpt-bench: bad history length %q", s)
		}
		lengths = append(lengths, n)
	}

	doc := ckptBenchDoc{
		Benchmark: "checkpoint restore: v1 full replay vs v2 base state + tail segment",
		SealEvery: *sealEvery,
		Algos:     map[string]*ckptBenchAlgo{},
		GatePass:  true,
	}
	for _, algo := range strings.Split(*algos, ",") {
		algo = strings.TrimSpace(algo)
		res := &ckptBenchAlgo{}
		doc.Algos[algo] = res
		for _, h := range lengths {
			row, err := ckptBenchRun(algo, h, *sealEvery, *points, *universe, *shards, *seed)
			if err != nil {
				return fmt.Errorf("ckpt-bench: %s/%d: %v", algo, h, err)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr,
					"ckpt-bench: %s n=%-7d v1 %7d B restore %7.1fms (replayed %d)   v2 %7d B (flate %7d B) restore %7.1fms (replayed %d)\n",
					algo, h, row.V1.Bytes, row.V1.RestoreMs, row.V1.Replayed,
					row.V2.Bytes, row.V2.BytesFlate, row.V2.RestoreMs, row.V2.Replayed)
			}
			res.Histories = append(res.Histories, row)
		}
		// Gate (a): v2 replay work flat in history — bounded by seal-every
		// at every length — and gate (c): the compressed v2 artifact beats
		// even v1's raw size.
		for _, row := range res.Histories {
			if row.V2.Replayed > *sealEvery {
				res.GateFailures = append(res.GateFailures, fmt.Sprintf(
					"v2 restore at history %d replayed %d arrivals > seal-every %d",
					row.Arrivals, row.V2.Replayed, *sealEvery))
			}
			if row.V1.Replayed != row.Arrivals {
				res.GateFailures = append(res.GateFailures, fmt.Sprintf(
					"v1 restore at history %d replayed %d arrivals, want the full %d",
					row.Arrivals, row.V1.Replayed, row.Arrivals))
			}
			if row.V2.BytesFlate >= row.V1.Bytes {
				res.GateFailures = append(res.GateFailures, fmt.Sprintf(
					"compressed v2 checkpoint at history %d is %d bytes, not below v1's raw %d",
					row.Arrivals, row.V2.BytesFlate, row.V1.Bytes))
			}
		}
		// Gate (b): at the deepest history the v2 capture must beat v1's
		// full-history marshal on the wall clock (only judged once the v1
		// time is above timer noise).
		deep := res.Histories[len(res.Histories)-1]
		if deep.V1.CaptureMs > 1 && deep.V2.CaptureMs >= deep.V1.CaptureMs {
			res.GateFailures = append(res.GateFailures, fmt.Sprintf(
				"v2 capture at history %d took %.2fms, not faster than v1's %.2fms",
				deep.Arrivals, deep.V2.CaptureMs, deep.V1.CaptureMs))
		}
		if len(res.GateFailures) > 0 {
			doc.GatePass = false
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(*out, "BENCH_checkpoint.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if !doc.GatePass {
		for algo, res := range doc.Algos {
			for _, f := range res.GateFailures {
				fmt.Fprintf(os.Stderr, "ckpt-bench: GATE FAILED (%s): %s\n", algo, f)
			}
		}
		return fmt.Errorf("ckpt-bench: v2 restore gate failed")
	}
	return nil
}

type ckptBenchDoc struct {
	Benchmark string                    `json:"benchmark"`
	SealEvery int                       `json:"seal_every"`
	Algos     map[string]*ckptBenchAlgo `json:"algos"`
	GatePass  bool                      `json:"gate_pass"`
}

type ckptBenchAlgo struct {
	Histories    []ckptBenchRow `json:"histories"`
	GateFailures []string       `json:"gate_failures,omitempty"`
}

type ckptBenchRow struct {
	Arrivals int           `json:"arrivals"`
	V1       ckptBenchSide `json:"v1"`
	V2       ckptBenchSide `json:"v2"`
}

type ckptBenchSide struct {
	Bytes int `json:"bytes"`
	// BytesFlate is the on-disk size with base states flate-compressed —
	// what Checkpoint.WriteFile actually writes. For v1 (no base states)
	// it tracks Bytes; for v2 it shows how much of the base-state overhead
	// compression buys back.
	BytesFlate int     `json:"bytes_flate"`
	CaptureMs  float64 `json:"capture_ms"`
	// EncodeMs times the wire encoding WriteFile performs on top of the
	// capture (JSON marshal + base-state flate). Reported, not gated: the
	// deflate of O(history) base states scales with state size — the same
	// bounded-state ROADMAP item the restore wall clock hits.
	EncodeMs  float64 `json:"encode_ms"`
	RestoreMs float64 `json:"restore_ms"`
	Replayed  int     `json:"replayed"`
	// TailArrivals is the checkpoint's replay obligation (== Replayed on a
	// successful restore); kept separately so the artifact is self-checking.
	TailArrivals int `json:"tail_arrivals"`
}

// ckptBenchRun drives one (algorithm, history length) cell: capture both
// formats from identical runs, time both restores, verify both restored
// snapshot sets against the source.
func ckptBenchRun(algo string, arrivals, sealEvery, points, universe, shards int, seed int64) (ckptBenchRow, error) {
	row := ckptBenchRow{Arrivals: arrivals}
	rng := rand.New(rand.NewSource(seed))
	space := metric.RandomEuclidean(rng, points, 2, 100)
	tr := workload.Uniform(rng, space, cost.PowerLaw(universe, 1, 1), arrivals, universe/2+1)

	base := engine.Config{Algorithm: algo, Shards: shards, Seed: seed, RecordArrivals: true}

	capture := func(sealCfg int, take func(*engine.Engine) (*engine.Checkpoint, error)) (*engine.Checkpoint, []byte, float64, error) {
		cfg := base
		cfg.SealEvery = sealCfg
		e, err := engine.NewChecked(cfg)
		if err != nil {
			return nil, nil, 0, err
		}
		defer e.Close()
		if _, err := e.ReplayTrace(tr, 1); err != nil {
			return nil, nil, 0, err
		}
		e.Drain()
		start := time.Now()
		ck, err := take(e)
		if err != nil {
			return nil, nil, 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1e3
		golden, err := snapshotBytes(e)
		if err != nil {
			return nil, nil, 0, err
		}
		return ck, golden, ms, nil
	}

	ckV1, golden, msV1, err := capture(-1, (*engine.Engine).CheckpointV1)
	if err != nil {
		return row, err
	}
	ckV2, goldenV2, msV2, err := capture(sealEvery, (*engine.Engine).Checkpoint)
	if err != nil {
		return row, err
	}
	if string(golden) != string(goldenV2) {
		return row, fmt.Errorf("sealing changed the served state: snapshots diverged between capture engines")
	}

	restore := func(ck *engine.Checkpoint) (engine.RestoreStats, float64, error) {
		cfg := base
		// Match the restore engine's sealing to the format under test: the
		// v1 baseline must measure a pure full replay, not replay plus the
		// v2 seal marshals it would trigger every sealEvery arrivals.
		if ck.Version == engine.CheckpointVersionV1 {
			cfg.SealEvery = -1
		} else {
			cfg.SealEvery = sealEvery
		}
		e, err := engine.NewChecked(cfg)
		if err != nil {
			return engine.RestoreStats{}, 0, err
		}
		defer e.Close()
		start := time.Now()
		stats, err := e.Restore(ck)
		if err != nil {
			return stats, 0, err
		}
		e.Drain()
		ms := float64(time.Since(start).Microseconds()) / 1e3
		got, err := snapshotBytes(e)
		if err != nil {
			return stats, ms, err
		}
		if string(got) != string(golden) {
			return stats, ms, fmt.Errorf("restored snapshots diverge from the source engine (version %d)", ck.Version)
		}
		return stats, ms, nil
	}

	statsV1, restoreMsV1, err := restore(ckV1)
	if err != nil {
		return row, err
	}
	b1, zdataV1, encMsV1, err := encodeBoth(ckV1)
	if err != nil {
		return row, err
	}
	b2, zdataV2, encMsV2, err := encodeBoth(ckV2)
	if err != nil {
		return row, err
	}
	// The v2 restore goes through the compressed wire format (flate base
	// states, re-decoded), so the gate also proves the compression round
	// trip — not just the in-memory checkpoint.
	var zV2 engine.Checkpoint
	if err := json.Unmarshal(zdataV2, &zV2); err != nil {
		return row, err
	}
	statsV2, restoreMsV2, err := restore(&zV2)
	if err != nil {
		return row, err
	}

	row.V1 = ckptBenchSide{Bytes: b1, BytesFlate: len(zdataV1), CaptureMs: msV1, EncodeMs: encMsV1,
		RestoreMs: restoreMsV1, Replayed: statsV1.Replayed, TailArrivals: ckV1.TailArrivals()}
	row.V2 = ckptBenchSide{Bytes: b2, BytesFlate: len(zdataV2), CaptureMs: msV2, EncodeMs: encMsV2,
		RestoreMs: restoreMsV2, Replayed: statsV2.Replayed, TailArrivals: ckV2.TailArrivals()}
	return row, nil
}

// encodeBoth marshals the checkpoint once raw (the in-memory document) and
// once in the WriteFile wire format (flate-compressed base states),
// returning the raw size, the compressed bytes, and the wall-clock cost of
// the wire encoding alone (the marshal+flate work a daemon adds on top of
// capture when it writes the tick's checkpoint).
func encodeBoth(ck *engine.Checkpoint) (rawLen int, zdata []byte, encodeMs float64, err error) {
	data, err := json.Marshal(ck)
	if err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	zck, err := ck.Compressed()
	if err != nil {
		return 0, nil, 0, err
	}
	zdata, err = json.Marshal(zck)
	if err != nil {
		return 0, nil, 0, err
	}
	encodeMs = float64(time.Since(start).Microseconds()) / 1e3
	return len(data), zdata, encodeMs, nil
}

func snapshotBytes(e *engine.Engine) ([]byte, error) {
	snaps, err := e.SnapshotAll()
	if err != nil {
		return nil, err
	}
	return json.Marshal(snaps)
}
