// Command omflp runs the reproduction experiments of "The Online
// Multi-Commodity Facility Location Problem" (SPAA 2020).
//
// Usage:
//
//	omflp list
//	omflp run <experiment-id> [-seed N] [-quick] [-workers N] [-csv DIR] [-bench-out DIR] [-no-charts]
//	omflp all [-seed N] [-quick] [-workers N] [-csv DIR] [-bench-out DIR] [-no-charts]
//	omflp replay -trace FILE [-seed N]        (replay a gentrace JSON file)
//	omflp serve [-trace FILE] [-algo pd|rand] [-shards N] [-tenants N]
//	            [-metrics-every DUR] [-snapshot-out FILE] [-snapshot-compact]
//	            [-listen-http ADDR] [-listen-tcp ADDR]
//	            [-checkpoint-dir DIR] [-checkpoint-every DUR]
//	            [-checkpoint-seal-every N] [-shard-policy hash|leastload]
//	omflp serve -cluster-router -nodes H:P,H:P,... -listen-http ADDR
//	            [-listen-tcp ADDR] [-placement leastload|rendezvous]
//	            [-health-every DUR] [-migrate-threshold F]
//	omflp loadgen [-mode http|tcp] [-addr HOST:PORT] [-targets H:P,...] [-trace FILE]
//	              [-dist uniform|zipf|bundled] [-rate N] [-ops-out FILE]
//	              [-tenants N] [-arrivals N] [-conc N] [-bench-out DIR] [-bench-key K]
//	omflp ckpt-bench [-histories N,N,...] [-seal-every N] [-out DIR]
//
// run/all, serve and loadgen accept -cpuprofile/-memprofile FILE to write
// pprof profiles of the run.
//
// serve is the streaming mode: it hosts internal/engine, ingests arrivals
// continuously (gentrace file traces or JSON-lines op streams, from stdin or
// -trace) across sharded multi-tenant serving goroutines, and emits
// deterministic per-tenant snapshots plus wall-clock metrics. With
// -listen-http/-listen-tcp it runs as a network daemon (internal/server):
// an HTTP API plus a length-prefixed TCP op protocol over one shared engine,
// periodic checkpoints to -checkpoint-dir with restore-on-start, and
// graceful drain on SIGINT/SIGTERM. With -cluster-router the process is a
// stateless router fronting a fleet of such daemons with the same two
// protocols: it places tenants, migrates them live between workers, and
// recovers routes when a killed worker restarts from its checkpoint (see
// internal/cluster). loadgen drives a daemon, a router, or a fleet
// (-targets partitions tenants across endpoints) with concurrent workers
// and reports achieved arrivals/s and latency percentiles; -bench-out
// writes BENCH_serve.json. See the usage text and the internal/engine,
// internal/server and internal/cluster package documentation for the wire
// formats.
//
// -workers fans independent experiment repetitions out across goroutines
// (0 = GOMAXPROCS, 1 = sequential); output is byte-identical for every
// worker count under a fixed seed. -bench-out makes the perf experiment
// write machine-readable benchmark artifacts into the given directory:
// BENCH_pd.json (incremental vs naive PD-OMFLP serve throughput) and
// BENCH_algos.json (arrivals/s for all four online algorithms across n and
// |S| sweeps).
//
// Experiment IDs map to paper artifacts (fig1, fig2, fig3, thm2, cor3,
// thm4, thm18, thm19, lem12, dual, ablation_*); see DESIGN.md §4 and
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/metric"
	"repro/internal/online"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "omflp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "list":
		return cmdList()
	case "run":
		return cmdRun(args[1:])
	case "all":
		return cmdAll(args[1:])
	case "replay":
		return cmdReplay(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "loadgen":
		return cmdLoadgen(args[1:])
	case "ckpt-bench":
		return cmdCkptBench(args[1:])
	case "explain":
		return cmdExplain(args[1:])
	case "check":
		return cmdCheck(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  omflp list                                     list experiments
  omflp run <id> [-seed N] [-quick] [-workers N] [-csv DIR] [-bench-out DIR]
                                                 run one experiment
  omflp all     [-seed N] [-quick] [-workers N] [-csv DIR] [-bench-out DIR]
                                                 run every experiment
  omflp replay -trace FILE [-seed N]             replay a JSON trace through all algorithms
  omflp serve [-trace FILE] [-algo pd|rand] [-shards N] [-tenants N] [-seed N]
              [-mailbox N] [-metrics-every DUR] [-snapshot-out FILE] [-quiet]
              [-snapshot-compact] [-shard-policy hash|leastload]
              [-listen-http ADDR] [-listen-tcp ADDR]
              [-checkpoint-dir DIR] [-checkpoint-every DUR] [-checkpoint-seal-every N]
                                                 stream arrivals through a serving engine
  omflp serve -cluster-router -nodes H:P,H:P,... -listen-http ADDR [-listen-tcp ADDR]
              [-placement leastload|rendezvous] [-health-every DUR] [-migrate-threshold F]
                                                 route tenants across worker daemons
  omflp loadgen [-mode http|tcp] [-addr HOST:PORT] [-targets H:P,...] [-trace FILE]
                [-dist uniform|zipf|bundled] [-zipf-s S] [-rate N] [-tenants N]
                [-arrivals N] [-conc N] [-batch N] [-seed N] [-ops-out FILE]
                [-bench-out DIR] [-bench-key K] [-http-targets H:P,...]
                                                 drive a serve daemon and measure throughput
  omflp ckpt-bench [-histories N,N] [-seal-every N] [-algos pd,rand] [-out DIR]
                                                 benchmark v1 vs v2 checkpoint restores
  omflp explain -trace FILE                      narrate PD-OMFLP's decisions on a trace
  omflp check -trace FILE                        validate a trace's metric and cost assumptions

-workers 0 (default) uses GOMAXPROCS goroutines for independent repetitions;
-workers 1 forces a sequential run. Tables are byte-identical either way
under a fixed seed. -bench-out DIR makes the perf experiment write
BENCH_pd.json and BENCH_algos.json (per-algorithm serve throughput) into DIR.
run/all, serve and loadgen all take -cpuprofile FILE and -memprofile FILE to
write go-tool-pprof profiles of the run (CPU stopped and heap captured on
exit), so serve-path perf work needs no code edits to diagnose.

serve reads a gentrace JSON trace or a JSON-lines op stream from stdin (or
-trace FILE) — "gentrace ... | omflp serve -algo pd -shards 8" works end to
end. Final per-tenant snapshots (open facilities, assignments, cost vs dual
lower bound) are printed as JSON to stdout, byte-identical for every -shards
value under a fixed seed; metrics (arrivals/s, p50/p99 serve latency, queue
depth) go to stderr. The op-stream format is documented in internal/engine.

With -listen-http/-listen-tcp, serve runs as a network daemon instead:
  POST /v1/tenants/{id}           create a tenant (universe, distances, cost_by_size)
  POST /v1/tenants/{id}/arrive    one arrival {"point":p,"demands":[..]} or a batch {"arrivals":[...]}
  GET  /v1/tenants/{id}/snapshot  consistent snapshot (?compact=1 drops assignment history)
  GET  /v1/snapshots              all tenants — same artifact as the stdin path
  GET  /v1/metrics, GET /healthz  engine metrics and liveness
  POST /v1/checkpoint             force a checkpoint now
The TCP listener ingests length-prefixed frames (4-byte big-endian length +
one JSON op) and acks each stream once on half-close. -checkpoint-dir DIR
persists engine state to DIR/engine.ckpt.json (atomic rename) every
-checkpoint-every; a restarted daemon restores it and resumes every tenant
with no cost divergence. Checkpoints use format v2: a base snapshot of each
tenant's serialized algorithm state plus the arrival segment served since —
-checkpoint-seal-every N re-bases a tenant once its tail exceeds N arrivals
(default 4096, negative = never), so a restore replays at most N arrivals
per tenant instead of the full history. Legacy v1 checkpoints restore too.
SIGINT/SIGTERM drains, checkpoints and exits.

loadgen's synthetic workload takes -dist uniform|zipf|bundled (zipf skews
commodity popularity with exponent -zipf-s; bundled demands all of S every
request) and -rate R sends on an open-loop schedule of R arrivals/s across
all workers (0 = closed loop). ckpt-bench writes BENCH_checkpoint.json
(capture/restore time + raw and flate-compressed bytes per history length,
v1 vs v2) and fails if a v2 restore replays more than -seal-every arrivals,
a deep v2 capture loses to v1's full-history marshal, or the compressed v2
artifact is not smaller than v1's raw document.

Quickstart:
  omflp serve -listen-http 127.0.0.1:8080 -checkpoint-dir /tmp/omflp &
  curl -X POST localhost:8080/v1/tenants/a -d '{"universe":2,
    "distances":[[0,1],[1,0]],"cost_by_size":[0,1,1.5]}'
  curl -X POST localhost:8080/v1/tenants/a/arrive -d '{"point":0,"demands":[0,1]}'
  curl localhost:8080/v1/tenants/a/snapshot

loadgen creates tenants and fans arrivals across -conc workers (tenants
partitioned per worker, preserving per-tenant order), then reports achieved
arrivals/s and latency percentiles as JSON. Without -addr it spawns an
in-process server on loopback; -bench-out DIR writes/updates
BENCH_serve.json keyed by transport mode (-bench-key overrides the key, so
cluster runs get their own section). -targets A,B,... partitions tenants
across several endpoints (a worker fleet driven directly); -http-targets
lists the matching HTTP addresses to poll for drain-aware timing. -ops-out
FILE dumps the op stream as JSON lines and exits — the dump replays through
serve stdin, loadgen -trace, and the TCP protocol alike.

Cluster mode: omflp serve -cluster-router -nodes A,B -listen-http ADDR
fronts worker daemons (started with their own -listen-http/-listen-tcp and
identical -algo/-seed) with the same HTTP API and TCP framing — clients and
loadgen run unchanged. The router places each tenant on one worker
(-placement leastload|rendezvous), health-checks workers every
-health-every, re-admits and re-syncs a worker that restarts from its
checkpoint, and migrates tenants live: POST /v1/migrate
{"tenant":"t","target":"host:port"} quiesces the tenant, moves its state,
replays arrivals buffered during the move, and flips the route — snapshots
are byte-identical across the move. -migrate-threshold F does this
automatically when the busiest worker's arrival rate exceeds the idlest's
F-fold. GET /v1/routes shows placements; GET /v1/metrics merges worker
metrics (stale scrapes flagged by sequence number, never double-counted).
Router-only endpoints return 421 for tenants with no route.`)
}

func cmdList() error {
	tab := report.NewTable("registered experiments", "id", "reproduces", "title")
	for _, e := range sim.All() {
		tab.AddRow(e.ID, e.Reproduces, e.Title)
	}
	return tab.Render(os.Stdout)
}

type runFlags struct {
	seed     int64
	quick    bool
	workers  int
	csvDir   string
	benchDir string
	noChart  bool
	prof     profileFlags
}

func parseRunFlags(name string, args []string) (runFlags, []string, error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	var rf runFlags
	fs.Int64Var(&rf.seed, "seed", 1, "random seed (fixed seed = identical results)")
	fs.BoolVar(&rf.quick, "quick", false, "smaller sizes for a fast smoke run")
	fs.IntVar(&rf.workers, "workers", 0, "goroutines for independent repetitions (0 = GOMAXPROCS, 1 = sequential)")
	fs.StringVar(&rf.csvDir, "csv", "", "directory to also write tables as CSV")
	fs.StringVar(&rf.benchDir, "bench-out", "", "directory for machine-readable benchmark artifacts (perf writes BENCH_pd.json)")
	fs.BoolVar(&rf.noChart, "no-charts", false, "suppress ASCII charts")
	rf.prof.register(fs)
	if err := fs.Parse(args); err != nil {
		return rf, nil, err
	}
	return rf, fs.Args(), nil
}

func cmdRun(args []string) error {
	var id string
	// Accept both "run <id> -flags" and "run -flags <id>".
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id, args = args[0], args[1:]
	}
	rf, rest, err := parseRunFlags("run", args)
	if err != nil {
		return err
	}
	if id == "" && len(rest) > 0 {
		id = rest[0]
	}
	if id == "" {
		return fmt.Errorf("run: missing experiment id (try `omflp list`)")
	}
	return rf.prof.withProfiles(func() error { return execute(id, rf) })
}

func cmdAll(args []string) error {
	rf, _, err := parseRunFlags("all", args)
	if err != nil {
		return err
	}
	return rf.prof.withProfiles(func() error {
		for _, e := range sim.All() {
			if err := execute(e.ID, rf); err != nil {
				return fmt.Errorf("%s: %v", e.ID, err)
			}
			fmt.Println()
		}
		return nil
	})
}

func execute(id string, rf runFlags) error {
	e, ok := sim.Get(id)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try `omflp list`)", id)
	}
	fmt.Printf("### %s — %s\n    reproduces: %s\n\n", e.ID, e.Title, e.Reproduces)
	res, err := e.Run(sim.Config{Seed: rf.seed, Quick: rf.quick, Workers: rf.workers, BenchDir: rf.benchDir})
	if err != nil {
		return err
	}
	for ti, tab := range res.Tables {
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if rf.csvDir != "" {
			if err := writeCSV(rf.csvDir, fmt.Sprintf("%s_%d.csv", e.ID, ti), tab); err != nil {
				return err
			}
		}
	}
	if !rf.noChart {
		for _, c := range res.Charts {
			if err := report.Chart(os.Stdout, c.Title, 72, 18, c.Series...); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}

func writeCSV(dir, name string, tab *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.WriteCSV(f)
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	var path string
	fs.StringVar(&path, "trace", "", "JSON trace file written by gentrace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" {
		return fmt.Errorf("explain: -trace is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.ReadJSON(f)
	if err != nil {
		return err
	}

	pd := core.NewPDOMFLP(tr.Instance.Space, tr.Instance.Costs, core.Options{})
	for _, r := range tr.Instance.Requests {
		pd.Serve(r)
	}
	sol := pd.Solution()
	if err := sol.Verify(tr.Instance); err != nil {
		return err
	}

	tab := report.NewTable(fmt.Sprintf("explain %s: PD-OMFLP decisions", tr.Name),
		"request", "point", "commodity", "constraint", "facility point", "config size", "dual a_re")
	for _, ev := range pd.ServeLog() {
		fac := sol.Facilities[ev.Facility]
		tab.AddRow(ev.Request, tr.Instance.Requests[ev.Request].Point, ev.Commodity,
			ev.Mode.String(), fac.Point, fac.Config.Len(), ev.Dual)
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}

	small, large := pd.FacilityCounts()
	sum := report.NewTable("summary", "quantity", "value")
	sum.AddRow("requests", len(tr.Instance.Requests))
	sum.AddRow("small facilities", small)
	sum.AddRow("large facilities", large)
	sum.AddRow("total cost", sol.Cost(tr.Instance))
	sum.AddRow("dual total (cost ≤ 3·dual)", pd.DualTotal())
	fmt.Println()
	return sum.Render(os.Stdout)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	var path string
	var seed int64
	fs.StringVar(&path, "trace", "", "JSON trace file written by gentrace")
	fs.Int64Var(&seed, "seed", 1, "seed for sampled checks on large universes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" {
		return fmt.Errorf("check: -trace is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.ReadJSON(f)
	if err != nil {
		return err
	}
	in := tr.Instance

	rng := rand.New(rand.NewSource(seed))
	points := make([]int, in.Space.Len())
	for i := range points {
		points[i] = i
	}
	tab := report.NewTable(fmt.Sprintf("check %s", tr.Name), "assumption", "result")
	pass := func(name string, err error) {
		if err != nil {
			tab.AddRow(name, "VIOLATED: "+err.Error())
		} else {
			tab.AddRow(name, "ok")
		}
	}
	pass("instance structure", in.Validate())
	pass("metric axioms (exhaustive)", metric.Check(in.Space))
	pass("cost subadditivity", cost.CheckSubadditive(in.Costs, points, 8, 2000, rng))
	pass("Condition 1 (f^σ/|σ| ≥ f^S/|S|)", cost.CheckCondition1(in.Costs, points, 8, 2000, rng))
	pass("cost monotonicity", cost.CheckMonotone(in.Costs, points, 8, 2000, rng))
	return tab.Render(os.Stdout)
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var path string
	var seed int64
	fs.StringVar(&path, "trace", "", "JSON trace file written by gentrace")
	fs.Int64Var(&seed, "seed", 1, "seed for randomized algorithms")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" {
		return fmt.Errorf("replay: -trace is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.ReadJSON(f)
	if err != nil {
		return err
	}

	factories := []online.Factory{
		core.PDFactory(core.Options{}),
		core.RandFactory(core.Options{}),
		baseline.PerCommodityPDFactory(nil),
		baseline.NoPredictionFactory(nil),
	}
	offline := baseline.BestOffline(tr.Instance, 40)
	opt := offline.Cost
	optSrc := offline.Name
	if tr.PlantedCost > 0 && tr.PlantedCost < opt {
		opt, optSrc = tr.PlantedCost, "planted"
	}

	tab := report.NewTable(fmt.Sprintf("replay %s (n=%d, |S|=%d)", tr.Name,
		len(tr.Instance.Requests), tr.Instance.Universe()),
		"algorithm", "cost", "facilities", "ratio vs "+optSrc)
	for _, fac := range factories {
		sol, c, err := online.Run(fac, tr.Instance, seed, true)
		if err != nil {
			return err
		}
		tab.AddRow(fac.Name, c, len(sol.Facilities), c/opt)
	}
	tab.AddRow(optSrc, opt, len(offline.Solution.Facilities), 1.0)
	return tab.Render(os.Stdout)
}
