package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

const (
	smokeTrace  = "testdata/serve_smoke_trace.json"
	smokeGolden = "testdata/serve_smoke_golden.json"
)

// TestServeMatchesGoldenAcrossShardCounts is the serve-mode determinism
// contract, pinned to the committed golden file the CI smoke job also diffs
// against: fixed trace + fixed seed must yield byte-identical snapshots for
// -shards 1, 2 and 8.
func TestServeMatchesGoldenAcrossShardCounts(t *testing.T) {
	want, err := os.ReadFile(smokeGolden)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []string{"1", "2", "8"} {
		out := filepath.Join(t.TempDir(), "snap.json")
		err := run([]string{"serve", "-trace", smokeTrace, "-algo", "pd",
			"-shards", shards, "-tenants", "3", "-seed", "1", "-quiet",
			"-snapshot-out", out})
		if err != nil {
			t.Fatalf("shards=%s: %v", shards, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("shards=%s: snapshot differs from %s — regenerate the golden if the change is intended", shards, smokeGolden)
		}
	}
}

// TestServeRandDeterministic: the randomized algorithm must also be
// shard-count invariant under a fixed engine seed.
func TestServeRandDeterministic(t *testing.T) {
	dir := t.TempDir()
	var first []byte
	for _, shards := range []string{"1", "4"} {
		out := filepath.Join(dir, "rand_"+shards+".json")
		err := run([]string{"serve", "-trace", smokeTrace, "-algo", "rand",
			"-shards", shards, "-tenants", "2", "-seed", "9", "-quiet",
			"-snapshot-out", out})
		if err != nil {
			t.Fatalf("shards=%s: %v", shards, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = got
		} else if !bytes.Equal(first, got) {
			t.Error("rand serve output differs between shard counts")
		}
	}
}

func TestServeErrors(t *testing.T) {
	if err := run([]string{"serve", "-trace", "/does/not/exist.json"}); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run([]string{"serve", "-trace", smokeTrace, "-algo", "quantum", "-quiet"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
