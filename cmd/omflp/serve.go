package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
)

// cmdServe is the streaming serving mode. Without listeners it hosts an
// engine, ingests arrivals from stdin or -trace (either a gentrace file
// trace or a JSON-lines op stream — autodetected), and emits the final
// per-tenant snapshots as JSON. With -listen-http and/or -listen-tcp it runs
// as a network daemon instead: arrivals come over the HTTP API and the
// framed TCP op protocol, state is checkpointed to -checkpoint-dir (and
// restored from it on startup), and SIGINT/SIGTERM triggers a graceful
// shutdown — drain mailboxes, final checkpoint, final snapshots. Snapshots
// go to -snapshot-out (default stdout) and are byte-identical for every
// -shards value under a fixed seed; metrics go to stderr, where they cannot
// pollute golden-file diffs.
//
// With -cluster-router the process hosts no engine at all: it fronts the
// worker daemons named by -nodes with the same HTTP and TCP surface,
// placing tenants (-placement), health-checking and re-admitting workers,
// migrating tenants live (POST /v1/migrate, or automatically past
// -migrate-threshold), and merging worker metrics into one cluster view.
// Engine flags (-algo, -seed, -shards, ...) are meaningless in router mode;
// the cluster's algorithm and seed come from the workers, which must agree.
func cmdServe(args []string) (retErr error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		tracePath    = fs.String("trace", "", "input file (default: stdin); gentrace JSON or a JSON-lines op stream")
		algo         = fs.String("algo", "pd", "serving algorithm per tenant: pd or rand")
		shards       = fs.Int("shards", 0, "serving goroutines (0 = GOMAXPROCS)")
		tenants      = fs.Int("tenants", 1, "tenants to fan a file trace across (round-robin); ignored for op streams")
		mailbox      = fs.Int("mailbox", 0, "per-shard queue capacity (0 = 256); full mailboxes block ingestion")
		seed         = fs.Int64("seed", 1, "engine seed (rand tenants derive per-tenant streams from it)")
		shardPolicy  = fs.String("shard-policy", "hash", "tenant→shard assignment: hash or leastload")
		noPrediction = fs.Bool("no-prediction", false, "ablation: disable large facilities")
		metricsEvery = fs.Duration("metrics-every", 0, "dump engine metrics to stderr at this interval (0 = off)")
		snapOut      = fs.String("snapshot-out", "", "file for the final snapshots (default: stdout)")
		snapCompact  = fs.Bool("snapshot-compact", false, "emit compact snapshots (facilities + cost only, no assignment history)")
		quiet        = fs.Bool("quiet", false, "suppress the final metrics summary on stderr")
		listenHTTP   = fs.String("listen-http", "", "daemon mode: HTTP API listen address (e.g. 127.0.0.1:8080)")
		listenTCP    = fs.String("listen-tcp", "", "daemon mode: framed-op TCP listen address")
		ckptDir      = fs.String("checkpoint-dir", "", "daemon mode: directory for periodic state checkpoints (restored on start)")
		ckptEvery    = fs.Duration("checkpoint-every", 15*time.Second, "daemon mode: checkpoint interval")
		sealEvery    = fs.Int("checkpoint-seal-every", 0, "re-base a tenant's checkpoint once its arrival tail exceeds N (0 = 4096 default, negative = never seal: full-replay restores)")
		routerMode   = fs.Bool("cluster-router", false, "run as a cluster router in front of -nodes instead of hosting an engine")
		nodes        = fs.String("nodes", "", "router mode: comma-separated worker HTTP addresses (host:port,...)")
		placement    = fs.String("placement", "leastload", "router mode: tenant placement policy, leastload or rendezvous")
		healthEvery  = fs.Duration("health-every", time.Second, "router mode: node health-probe interval")
		migThreshold = fs.Float64("migrate-threshold", 0, "router mode: auto-migrate when the busiest node's arrival rate exceeds the idlest's by this factor (0 = off)")
		standbyOf    = fs.String("standby-of", "", "router mode: start passive, following the active router's framed-TCP address and promoting on its failure")
		replicate    = fs.Bool("replicate", false, "router mode: dual-write every tenant to a follower node so a dead owner fails over without data loss")
		downAfter    = fs.Int("down-after", 0, "router mode: consecutive probe failures before a node is declared down (0 = 1)")
		failoverAft  = fs.Int("failover-after", 0, "router mode: consecutive follow-stream losses before a standby promotes itself (0 = 3)")
		faultSpec    = fs.String("faults", "", "inject deterministic faults into cluster I/O, e.g. seed=7,dial-fail=1/40,conn-reset=1/80,stall=1/60:5ms,partial=1/100,probe-flap=1/50")
		traceSample  = fs.Int("trace-sample", 0, "trace 1 in N arrivals end to end (stage latencies + flight records; 0 = off)")
		flightRecs   = fs.Int("flight-records", 0, "per-shard flight-recorder capacity (0 = 256); needs -trace-sample")
		logLevel     = fs.String("log-level", "info", "structured-log threshold: debug, info, warn, or error")
		logOut       = fs.String("log-out", "stderr", "structured-log destination: stderr, stdout, or a file path (appended)")
		pprofOn      = fs.Bool("pprof", false, "daemon/router mode: mount net/http/pprof under /debug/pprof/ on the HTTP listener")
		tcpPipeline  = fs.Int("tcp-pipeline", 0, "daemon mode: per-connection decode→engine handoff queue depth (0 = 32 default)")
		tcpBatch     = fs.Int("tcp-batch", 0, "daemon mode: max arrivals coalesced into one engine batch op on the TCP path (0 = 64 default)")
	)
	var prof profileFlags
	prof.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.startDeferred(&retErr)
	if err != nil {
		return err
	}
	defer stopProf()

	// -quiet lifts the log threshold to warn unless the user pinned one
	// explicitly — lifecycle chatter off, failures still visible.
	level := *logLevel
	if *quiet {
		explicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "log-level" {
				explicit = true
			}
		})
		if !explicit {
			level = "warn"
		}
	}
	logger, closeLog, err := obs.NewLogger(level, *logOut)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	defer closeLog()

	if *routerMode {
		if *nodes == "" {
			return fmt.Errorf("serve: -cluster-router needs -nodes")
		}
		if *listenHTTP == "" {
			return fmt.Errorf("serve: -cluster-router needs -listen-http")
		}
		if *standbyOf != "" && *listenTCP == "" {
			return fmt.Errorf("serve: -standby-of needs -listen-tcp (promotion serves the framed protocol)")
		}
		var inj *faults.Injector
		if *faultSpec != "" {
			var ferr error
			if inj, ferr = faults.Parse(*faultSpec); ferr != nil {
				return fmt.Errorf("serve: -faults: %v", ferr)
			}
		}
		// Router mode reuses -checkpoint-dir as the durable route-log
		// directory: the router's own restart-in-O(1) state.
		return routerDaemon(cluster.Config{
			HTTPAddr:         *listenHTTP,
			TCPAddr:          *listenTCP,
			Nodes:            strings.Split(*nodes, ","),
			Placement:        *placement,
			HealthEvery:      *healthEvery,
			MigrateThreshold: *migThreshold,
			TraceSample:      *traceSample,
			EnablePprof:      *pprofOn,
			StateDir:         *ckptDir,
			StandbyOf:        *standbyOf,
			Replicate:        *replicate,
			DownAfter:        *downAfter,
			FailoverAfter:    *failoverAft,
			Faults:           inj,
			Logger:           logger,
		}, *quiet)
	}

	engCfg := engine.Config{
		Algorithm:     *algo,
		Shards:        *shards,
		Mailbox:       *mailbox,
		Seed:          *seed,
		ShardPolicy:   *shardPolicy,
		SealEvery:     *sealEvery,
		TraceSample:   *traceSample,
		FlightRecords: *flightRecs,
		Logger:        logger,
		Options:       core.Options{DisablePrediction: *noPrediction},
	}
	if *listenHTTP != "" || *listenTCP != "" {
		return serveDaemon(daemonConfig{
			engine:    engCfg,
			http:      *listenHTTP,
			tcp:       *listenTCP,
			ckptDir:   *ckptDir,
			ckptEvery: *ckptEvery,
			trace:     *tracePath,
			tenants:   *tenants,
			metrics:   *metricsEvery,
			snapOut:   *snapOut,
			compact:   *snapCompact,
			quiet:     *quiet,
			pprof:     *pprofOn,
			tcpPipe:   *tcpPipeline,
			tcpBatch:  *tcpBatch,
			logger:    logger,
		})
	}

	var input io.Reader = os.Stdin
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		input = f
	}

	eng, err := engine.NewChecked(engCfg)
	if err != nil {
		return err
	}
	defer eng.Close()

	stopMetrics := startMetricsDump(eng, *metricsEvery)
	defer stopMetrics()

	arrivals, err := eng.ReplayReader(input, *tenants)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}

	if err := emitSnapshots(eng, *snapOut, *snapCompact); err != nil {
		return err
	}

	if !*quiet {
		m := eng.Metrics()
		fmt.Fprintf(os.Stderr,
			"serve: %d arrivals, %d tenants, %d shards — %.0f arrivals/s, p50 %.1fµs, p99 %.1fµs\n",
			arrivals, m.Tenants, m.Shards, m.ArrivalsPerSec, m.LatencyP50Micros, m.LatencyP99Micros)
	}
	return nil
}

// startMetricsDump starts the periodic stderr metrics dump; the returned
// stop function is idempotent. every <= 0 disables it.
func startMetricsDump(eng *engine.Engine, every time.Duration) func() {
	if every <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		enc := json.NewEncoder(os.Stderr)
		for {
			select {
			case <-tick.C:
				enc.Encode(eng.Metrics())
			case <-stop:
				return
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(stop)
			<-done
		}
	}
}

// emitSnapshots writes the final snapshot artifact to path (stdout if "").
func emitSnapshots(eng *engine.Engine, path string, compact bool) error {
	var snaps []*engine.TenantSnapshot
	var err error
	if compact {
		snaps, err = eng.SnapshotAllCompact()
	} else {
		snaps, err = eng.SnapshotAll()
	}
	if err != nil {
		return err
	}
	out := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return writeSnapshots(out, snaps)
}

// routerDaemon fronts a fleet of worker daemons until SIGINT/SIGTERM. The
// router holds no engine; tenants live on the workers. With -checkpoint-dir
// the routing table and arrival ledgers persist as a route log and restore
// in O(1) at start — without it, the table rebuilds from worker snapshots.
func routerDaemon(cfg cluster.Config, quiet bool) error {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	router, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	if err := router.Start(); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "serve: router http listening on %s\n", router.HTTPAddr())
		if a := router.TCPAddr(); a != "" {
			fmt.Fprintf(os.Stderr, "serve: router tcp listening on %s\n", a)
		}
	}

	sig := <-sigs
	signal.Stop(sigs)
	if !quiet {
		fmt.Fprintf(os.Stderr, "serve: %v — router shutting down\n", sig)
	}
	return router.Shutdown(30 * time.Second)
}

type daemonConfig struct {
	engine    engine.Config
	http, tcp string
	ckptDir   string
	ckptEvery time.Duration
	trace     string
	tenants   int
	metrics   time.Duration
	snapOut   string
	compact   bool
	quiet     bool
	pprof     bool
	tcpPipe   int
	tcpBatch  int
	logger    *slog.Logger
}

// serveDaemon runs the network serving layer until SIGINT/SIGTERM, then
// shuts down gracefully: drain, final checkpoint, final snapshot artifact.
func serveDaemon(cfg daemonConfig) error {
	// Register the signal handler before anything becomes observable
	// (listeners, checkpoints): once the daemon looks ready, SIGTERM is
	// guaranteed to mean graceful shutdown, never the default kill.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	srv, err := server.New(server.Config{
		HTTPAddr:        cfg.http,
		TCPAddr:         cfg.tcp,
		CheckpointDir:   cfg.ckptDir,
		CheckpointEvery: cfg.ckptEvery,
		EnablePprof:     cfg.pprof,
		TCPPipeline:     cfg.tcpPipe,
		TCPBatch:        cfg.tcpBatch,
		Logger:          cfg.logger,
		Engine:          cfg.engine,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	eng := srv.Engine()
	if n := srv.Restored(); n > 0 && !cfg.quiet {
		fmt.Fprintf(os.Stderr, "serve: restored %d arrivals from checkpoint in %s\n", n, cfg.ckptDir)
	}
	if !cfg.quiet {
		if a := srv.HTTPAddr(); a != "" {
			fmt.Fprintf(os.Stderr, "serve: http listening on %s\n", a)
		}
		if a := srv.TCPAddr(); a != "" {
			fmt.Fprintf(os.Stderr, "serve: tcp listening on %s\n", a)
		}
	}

	// An explicit -trace seeds the daemon before network traffic — but not
	// after a checkpoint restore: the checkpoint already contains the
	// seeded arrivals, and replaying them again would double-serve every
	// request (the standard restart command line keeps the same flags).
	if cfg.trace != "" && srv.Restored() == 0 {
		f, err := os.Open(cfg.trace)
		if err != nil {
			return err
		}
		if _, err := eng.ReplayReader(f, cfg.tenants); err != nil {
			f.Close()
			return fmt.Errorf("serve: %v", err)
		}
		f.Close()
	} else if cfg.trace != "" && !cfg.quiet {
		fmt.Fprintln(os.Stderr, "serve: checkpoint restored; skipping -trace seeding")
	}

	stopMetrics := startMetricsDump(eng, cfg.metrics)
	defer stopMetrics()

	sig := <-sigs
	signal.Stop(sigs)
	if !cfg.quiet {
		fmt.Fprintf(os.Stderr, "serve: %v — shutting down\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	stopMetrics()

	// The engine is closed after Shutdown; emit the artifact from the
	// final checkpoint when available, otherwise skip (snapshots were
	// observable over HTTP while the daemon ran).
	if cfg.ckptDir == "" {
		return nil
	}
	ck, err := engine.ReadCheckpointFile(cfg.ckptDir + "/" + server.CheckpointFile)
	if err != nil {
		return err
	}
	replay, err := engine.NewChecked(cfg.engine)
	if err != nil {
		return err
	}
	defer replay.Close()
	if _, err := replay.Restore(ck); err != nil {
		return err
	}
	return emitSnapshots(replay, cfg.snapOut, cfg.compact)
}

// writeSnapshots emits the deterministic snapshot artifact: indented JSON,
// tenants sorted by name, trailing newline.
func writeSnapshots(w io.Writer, snaps []*engine.TenantSnapshot) error {
	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
