package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// cmdServe is the streaming serving mode: it hosts an engine, ingests
// arrivals from stdin or -trace (either a gentrace file trace or a JSON-lines
// op stream — autodetected), and emits the final per-tenant snapshots as
// JSON. Snapshots go to -snapshot-out (default stdout) and are byte-identical
// for every -shards value under a fixed seed; metrics go to stderr, where
// they cannot pollute golden-file diffs.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		tracePath    = fs.String("trace", "", "input file (default: stdin); gentrace JSON or a JSON-lines op stream")
		algo         = fs.String("algo", "pd", "serving algorithm per tenant: pd or rand")
		shards       = fs.Int("shards", 0, "serving goroutines (0 = GOMAXPROCS)")
		tenants      = fs.Int("tenants", 1, "tenants to fan a file trace across (round-robin); ignored for op streams")
		mailbox      = fs.Int("mailbox", 0, "per-shard queue capacity (0 = 256); full mailboxes block ingestion")
		seed         = fs.Int64("seed", 1, "engine seed (rand tenants derive per-tenant streams from it)")
		noPrediction = fs.Bool("no-prediction", false, "ablation: disable large facilities")
		metricsEvery = fs.Duration("metrics-every", 0, "dump engine metrics to stderr at this interval (0 = off)")
		snapOut      = fs.String("snapshot-out", "", "file for the final snapshots (default: stdout)")
		quiet        = fs.Bool("quiet", false, "suppress the final metrics summary on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var input io.Reader = os.Stdin
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		input = f
	}

	eng, err := engine.NewChecked(engine.Config{
		Algorithm: *algo,
		Shards:    *shards,
		Mailbox:   *mailbox,
		Seed:      *seed,
		Options:   core.Options{DisablePrediction: *noPrediction},
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	if *metricsEvery > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*metricsEvery)
			defer tick.Stop()
			enc := json.NewEncoder(os.Stderr)
			for {
				select {
				case <-tick.C:
					enc.Encode(eng.Metrics())
				case <-stop:
					return
				}
			}
		}()
	}

	arrivals, err := eng.ReplayReader(input, *tenants)
	if err != nil {
		return fmt.Errorf("serve: %v", err)
	}

	snaps, err := eng.SnapshotAll()
	if err != nil {
		return err
	}
	out := os.Stdout
	if *snapOut != "" {
		f, err := os.Create(*snapOut)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := writeSnapshots(out, snaps); err != nil {
		return err
	}

	if !*quiet {
		m := eng.Metrics()
		fmt.Fprintf(os.Stderr,
			"serve: %d arrivals, %d tenants, %d shards — %.0f arrivals/s, p50 %.1fµs, p99 %.1fµs\n",
			arrivals, m.Tenants, m.Shards, m.ArrivalsPerSec, m.LatencyP50Micros, m.LatencyP99Micros)
	}
	return nil
}

// writeSnapshots emits the deterministic snapshot artifact: indented JSON,
// tenants sorted by name, trailing newline.
func writeSnapshots(w io.Writer, snaps []*engine.TenantSnapshot) error {
	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
