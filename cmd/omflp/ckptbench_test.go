package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCkptBenchSmall drives the checkpoint benchmark end to end at small
// history lengths: the artifact must be written, the gate must pass (v2
// replays ≤ seal-every arrivals at every length while v1 replays
// everything), and the recorded replay counts must encode exactly that.
func TestCkptBenchSmall(t *testing.T) {
	dir := t.TempDir()
	// Silence the stdout JSON: the command writes the same doc to -out.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	err = run([]string{"ckpt-bench", "-histories", "150,600", "-seal-every", "40",
		"-algos", "pd,rand", "-points", "10", "-universe", "4", "-out", dir, "-quiet"})
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatalf("ckpt-bench failed: %v", err)
	}

	data, err := os.ReadFile(filepath.Join(dir, "BENCH_checkpoint.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc ckptBenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.GatePass {
		t.Fatalf("gate failed: %+v", doc.Algos)
	}
	for algo, res := range doc.Algos {
		if len(res.Histories) != 2 {
			t.Fatalf("%s: %d history rows, want 2", algo, len(res.Histories))
		}
		for _, row := range res.Histories {
			if row.V1.Replayed != row.Arrivals {
				t.Errorf("%s n=%d: v1 replayed %d, want the full history", algo, row.Arrivals, row.V1.Replayed)
			}
			if row.V2.Replayed > doc.SealEvery {
				t.Errorf("%s n=%d: v2 replayed %d > seal-every %d", algo, row.Arrivals, row.V2.Replayed, doc.SealEvery)
			}
			if row.V1.Bytes == 0 || row.V2.Bytes == 0 {
				t.Errorf("%s n=%d: zero checkpoint bytes recorded", algo, row.Arrivals)
			}
		}
	}
}

// TestCkptBenchBadFlags: malformed inputs must error before any engine work.
func TestCkptBenchBadFlags(t *testing.T) {
	if err := run([]string{"ckpt-bench", "-histories", "abc"}); err == nil {
		t.Error("bad -histories accepted")
	}
	if err := run([]string{"ckpt-bench", "-seal-every", "0"}); err == nil {
		t.Error("-seal-every 0 accepted")
	}
}
