package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags is the shared -cpuprofile/-memprofile wiring for the
// long-running subcommands (run/all, serve, loadgen), so perf work on the
// serve path is diagnosable with stock `go tool pprof` instead of editing
// benchmark code.
type profileFlags struct {
	cpu string
	mem string
}

func (pf *profileFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&pf.cpu, "cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	fs.StringVar(&pf.mem, "memprofile", "", "write an allocation profile to this file on exit")
}

// start begins CPU profiling if requested and returns a stop function that
// finishes the CPU profile and captures the heap profile. The stop function
// must run on every exit path (defer it right after start succeeds); it
// reports profile-writing errors so a truncated profile fails the command
// loudly instead of silently producing garbage.
func (pf *profileFlags) start() (stop func() error, err error) {
	var cpuFile *os.File
	if pf.cpu != "" {
		cpuFile, err = os.Create(pf.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %v", err)
		}
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %v", err)
			}
		}
		if pf.mem != "" {
			f, err := os.Create(pf.mem)
			if err != nil {
				return fmt.Errorf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("memprofile: %v", err)
			}
		}
		return nil
	}, nil
}

// startDeferred is the defer-friendly profile lifecycle for commands with a
// named error return: `defer stop()` finishes the profiles and folds a
// profile-writing error into *retErr only when the command body itself
// succeeded, so it never masks the real failure.
func (pf *profileFlags) startDeferred(retErr *error) (stop func(), err error) {
	stopProf, err := pf.start()
	if err != nil {
		return nil, err
	}
	return func() {
		if err := stopProf(); err != nil && *retErr == nil {
			*retErr = err
		}
	}, nil
}

// withProfiles runs fn bracketed by the same lifecycle, for commands whose
// body is already a closure.
func (pf *profileFlags) withProfiles(fn func() error) (retErr error) {
	stop, err := pf.startDeferred(&retErr)
	if err != nil {
		return err
	}
	defer stop()
	return fn()
}
