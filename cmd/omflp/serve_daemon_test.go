package main

import (
	"bytes"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// TestServeDaemonCheckpointAndShutdown drives the daemon path end to end
// in-process: seed it with the smoke trace, wait for a periodic checkpoint
// covering every arrival, SIGTERM it, and check that the final snapshot
// artifact written on shutdown equals the stdin path's committed golden.
// (The daemon registers its signal handler before any readiness signal, so
// observing the checkpoint file means SIGTERM is already safe.)
func TestServeDaemonCheckpointAndShutdown(t *testing.T) {
	dir := t.TempDir()
	ckptDir := filepath.Join(dir, "ckpt")
	snapOut := filepath.Join(dir, "snap.json")

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve",
			"-listen-http", "127.0.0.1:0",
			"-listen-tcp", "127.0.0.1:0",
			"-checkpoint-dir", ckptDir,
			"-checkpoint-every", "30ms",
			// Seal aggressively so the shutdown artifact is produced
			// through a v2 base-state restore, not a full replay.
			"-checkpoint-seal-every", "10",
			"-trace", smokeTrace, "-tenants", "3",
			"-algo", "pd", "-shards", "4", "-seed", "1",
			"-snapshot-out", snapOut, "-quiet"})
	}()

	// Wait until a checkpoint covering the whole seeded trace exists.
	ckptPath := filepath.Join(ckptDir, server.CheckpointFile)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ck, err := engine.ReadCheckpointFile(ckptPath); err == nil && ck.Arrivals() == 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no full checkpoint appeared within 10s")
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}

	got, err := os.ReadFile(snapOut)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(smokeGolden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("daemon snapshot artifact differs from %s", smokeGolden)
	}
}
