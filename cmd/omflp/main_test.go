package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"

	"math/rand"

	"repro/internal/cost"
	"repro/internal/metric"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperimentQuick(t *testing.T) {
	if err := run([]string{"run", "fig2", "-quick", "-no-charts"}); err != nil {
		t.Fatal(err)
	}
	// Flags-before-id order is accepted too.
	if err := run([]string{"run", "-quick", "-no-charts", "fig3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"run", "fig2", "-quick", "-no-charts", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "fig2_*.csv"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no CSV written: %v %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"run"}); err == nil {
		t.Error("run without id accepted")
	}
	if err := run([]string{"run", "nope", "-quick"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"replay"}); err == nil {
		t.Error("replay without trace accepted")
	}
	if err := run([]string{"replay", "-trace", "/does/not/exist.json"}); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestReplayRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	space := metric.RandomLine(rng, 4, 10)
	tr := workload.Uniform(rng, space, cost.PowerLaw(3, 1, 1), 8, 2)
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"replay", "-trace", path}); err != nil {
		t.Fatal(err)
	}
}

func TestHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	space := metric.RandomLine(rng, 4, 10)
	tr := workload.Uniform(rng, space, cost.PowerLaw(3, 1, 1), 5, 2)
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"check", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check"}); err == nil {
		t.Error("check without trace accepted")
	}
}

func TestExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	space := metric.RandomLine(rng, 4, 10)
	tr := workload.Uniform(rng, space, cost.PowerLaw(3, 1, 1), 6, 2)
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"explain", "-trace", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"explain"}); err == nil {
		t.Error("explain without trace accepted")
	}
	if err := run([]string{"explain", "-trace", "/missing.json"}); err == nil {
		t.Error("explain with missing file accepted")
	}
}
