package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/commodity"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
)

// cmdLoadgen drives an omflp serve daemon over HTTP or the framed TCP
// protocol with configurable concurrency and reports achieved arrivals/s
// plus latency percentiles. Without -addr it spawns an in-process server on
// loopback first — "omflp loadgen -mode tcp" benchmarks the whole network
// stack with one command. Workers partition tenants (tenant t drives on
// worker t mod conc), so per-tenant arrival order is exactly trace order:
// driving a server with -trace reproduces the stdin path's snapshots.
func cmdLoadgen(args []string) (retErr error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "tcp", "transport to drive: http or tcp")
		addr      = fs.String("addr", "", "server address, or a comma-separated failover rotation (active router first, standby after); empty: spawn an in-process server on loopback")
		targets   = fs.String("targets", "", "comma-separated target addresses; tenants are partitioned across them (overrides -addr)")
		httpAddr  = fs.String("http-addr", "", "HTTP address of the target server for metrics/draining, or a comma-separated failover rotation (default: -addr in http mode)")
		httpTgts  = fs.String("http-targets", "", "comma-separated HTTP addresses (any order) polled for metrics/draining with -targets")
		tracePath = fs.String("trace", "", "drive a gentrace JSON file or a JSON-lines op stream instead of a synthetic workload")
		opsOut    = fs.String("ops-out", "", "write the op stream (creates, then arrivals) as JSON lines to this file and exit")
		benchKey  = fs.String("bench-key", "", "BENCH_serve.json section to record under (default: -mode)")
		benchNote = fs.String("bench-note", "", "free-form note recorded with the bench row (machine shape, topology)")
		tenants   = fs.Int("tenants", 4, "tenants to create and fan arrivals across")
		arrivals  = fs.Int("arrivals", 20000, "synthetic arrivals to send (ignored with -trace)")
		points    = fs.Int("points", 20, "points in the synthetic metric space")
		universe  = fs.Int("universe", 8, "universe size |S| of the synthetic workload")
		dist      = fs.String("dist", "uniform", "synthetic workload mix: uniform, zipf (skewed commodity popularity) or bundled (every request demands all of S)")
		zipfS     = fs.Float64("zipf-s", 1.5, "zipf exponent for -dist zipf (> 1; larger = more skew)")
		rate      = fs.Float64("rate", 0, "open-loop arrival schedule: target arrivals/s across all workers (0 = closed loop, as fast as the server admits)")
		conc      = fs.Int("conc", 4, "concurrent driver workers (connections in tcp mode)")
		batch     = fs.Int("batch", 64, "arrivals per HTTP request (http mode)")
		wire      = fs.String("wire", "json", "tcp frame encoding: json or binary")
		wireBatch = fs.Int("wire-batch", 64, "arrivals per binary BATCH frame (-wire binary)")
		window    = fs.Int("window", 0, "windowed acks: max in-flight arrivals per connection (0 = stream without acks; requires -wire binary)")
		seed      = fs.Int64("seed", 1, "workload + engine seed")
		algo      = fs.String("algo", "pd", "algorithm for a spawned server: pd or rand")
		shards    = fs.Int("shards", 0, "shards for a spawned server (0 = GOMAXPROCS)")
		trcSample = fs.Int("trace-sample", 0, "op-trace sample rate for a spawned server (1 in N arrivals; 0 = off) — the tracing-overhead benchmark knob")
		retry     = fs.Int("retry", 0, "retry a failed request or stream up to N times, rotating across the -addr/-http-addr failover lists; arrivals are idempotency-keyed so replays never double-serve (0 = fail fast)")
		retryWait = fs.Duration("retry-wait", 250*time.Millisecond, "pause between retries")
		latOut    = fs.String("latency-out", "", "write the full client-side latency histogram (JSON) to this file")
		benchDir  = fs.String("bench-out", "", "directory to write/update BENCH_serve.json")
		quiet     = fs.Bool("quiet", false, "suppress progress messages on stderr")
	)
	var prof profileFlags
	prof.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.startDeferred(&retErr)
	if err != nil {
		return err
	}
	defer stopProf()
	if *mode != "http" && *mode != "tcp" {
		return fmt.Errorf("loadgen: unknown mode %q (want http or tcp)", *mode)
	}
	// Validate the workload flags even when -trace overrides them: a typo'd
	// mix must fail loudly, never be silently ignored.
	switch *dist {
	case "uniform", "bundled":
	case "zipf":
		if *zipfS <= 1 {
			return fmt.Errorf("loadgen: -zipf-s must be > 1 (got %g)", *zipfS)
		}
	default:
		return fmt.Errorf("loadgen: unknown -dist %q (want uniform, zipf or bundled)", *dist)
	}
	if *rate < 0 {
		return fmt.Errorf("loadgen: -rate must be >= 0")
	}
	if *conc < 1 {
		*conc = 1
	}
	switch *wire {
	case "json":
		if *window > 0 {
			return fmt.Errorf("loadgen: -window requires -wire binary")
		}
	case "binary":
		if *mode != "tcp" {
			return fmt.Errorf("loadgen: -wire binary requires -mode tcp")
		}
		if *wireBatch < 1 {
			*wireBatch = 1
		}
		if *window < 0 || *window > server.MaxAckWindow {
			return fmt.Errorf("loadgen: -window must be in 0..%d", server.MaxAckWindow)
		}
		// A batch frame larger than the window could never fit the
		// in-flight budget; clamp so windowed streams make progress.
		if *window > 0 && *wireBatch > *window {
			*wireBatch = *window
		}
	default:
		return fmt.Errorf("loadgen: unknown -wire %q (want json or binary)", *wire)
	}

	// Workload: a trace or op-stream file, or a synthetic uniform workload.
	var tr *workload.Trace
	var ops opSplit
	haveOps := false
	if *tracePath != "" {
		var rerr error
		ops, haveOps, tr, rerr = readWorkloadFile(*tracePath)
		if rerr != nil {
			return rerr
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		space := metric.RandomEuclidean(rng, *points, 2, 100)
		costs := cost.PowerLaw(*universe, 1, 1)
		switch *dist {
		case "uniform":
			tr = workload.Uniform(rng, space, costs, *arrivals, *universe/2+1)
		case "zipf":
			tr = workload.Zipf(rng, space, costs, *arrivals, *universe/2+1, *zipfS)
		case "bundled":
			tr = workload.Bundled(rng, space, costs, *arrivals)
		}
	}
	if !haveOps {
		ops = traceToOps(tr, *tenants)
	}
	if *opsOut != "" {
		return writeOpsFile(*opsOut, ops)
	}

	rp := clientRetry{attempts: *retry, wait: *retryWait}

	// Targets: -targets (tenant-partitioned fleet), an external -addr
	// (possibly a failover rotation), or a spawned in-process server.
	var tgts, metricsBases []*rotation
	for _, a := range splitAddrs(*targets) {
		tgts = append(tgts, newRotation(a))
	}
	for _, a := range splitAddrs(*httpTgts) {
		metricsBases = append(metricsBases, newRotation(a))
	}
	if len(tgts) == 0 {
		target := splitAddrs(*addr)
		metricsBase := splitAddrs(*httpAddr)
		if *mode == "http" && len(metricsBase) == 0 {
			metricsBase = target
		}
		if len(target) == 0 {
			srv, err := server.New(server.Config{
				HTTPAddr: "127.0.0.1:0",
				TCPAddr:  "127.0.0.1:0",
				Engine: engine.Config{
					Algorithm: *algo, Shards: *shards, Seed: *seed,
					TraceSample: *trcSample,
				},
			})
			if err != nil {
				return err
			}
			if err := srv.Start(); err != nil {
				return err
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			}()
			if *mode == "http" {
				target = []string{srv.HTTPAddr()}
			} else {
				target = []string{srv.TCPAddr()}
			}
			metricsBase = []string{srv.HTTPAddr()}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "loadgen: spawned server http=%s tcp=%s\n", srv.HTTPAddr(), srv.TCPAddr())
			}
		}
		tgts = []*rotation{newRotation(target...)}
		if len(metricsBase) > 0 {
			metricsBases = []*rotation{newRotation(metricsBase...)}
		}
	} else if len(metricsBases) == 0 {
		if hm := splitAddrs(*httpAddr); len(hm) > 0 {
			metricsBases = []*rotation{newRotation(hm...)}
		} else if *mode == "http" {
			metricsBases = tgts
		}
	}
	if rp.attempts == 0 {
		for _, ep := range append(append([]*rotation{}, tgts...), metricsBases...) {
			if len(ep.addrs) > 1 {
				return fmt.Errorf("loadgen: a failover address rotation needs -retry")
			}
		}
	}
	if rp.attempts > 0 && *mode == "tcp" && len(metricsBases) == 0 {
		return fmt.Errorf("loadgen: tcp -retry needs -http-addr to recover the resume cursor (GET /v1/tenants/{id}/served)")
	}

	servedBefore, _ := sumServed(metricsBases)

	// Phase 1: create the tenants (serialized; arrivals must not race
	// tenant existence across workers). Each create goes to the target its
	// tenant's arrivals will drive.
	if err := runCreates(*mode, tgts, ops.creates, *conc, rp); err != nil {
		return err
	}

	// Phase 2: drive arrivals with conc workers, tenants partitioned by
	// worker so per-tenant order is preserved. Payload rendering happens
	// before the clock starts — the measurement is server ingestion, not
	// client-side JSON marshaling. (Retry mode keeps the raw ops instead:
	// a resumed stream re-renders from the surviving cursor.)
	work, err := prepareDrive(*mode, ops, *conc, *rate, *wire, *wireBatch, *window, rp)
	if err != nil {
		return err
	}
	start := time.Now()
	lats, streamLats, err := runArrivals(*mode, tgts, metricsBases, work, *batch, rp)
	if err != nil {
		return err
	}
	sent := len(ops.arrives)

	// The TCP ack (and an HTTP 200) mean admitted, not served: wait until
	// the servers report everything served before stopping the clock.
	// Without an HTTP address to poll (tcp mode against an external server
	// with no -http-addr) the number would measure admission instead —
	// say so loudly rather than silently reporting an inflated rate.
	if len(metricsBases) > 0 {
		if err := waitServed(metricsBases, servedBefore+int64(sent), 30*time.Second); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(os.Stderr, "loadgen: warning: no -http-addr to poll — reported"+
			" arrivals/s measures admission (mailbox backlog excluded); pass -http-addr"+
			" for drain-aware timing")
	}
	elapsed := time.Since(start)

	rep := loadgenReport{
		Mode:           *mode,
		Arrivals:       sent,
		Tenants:        *tenants,
		Concurrency:    *conc,
		ElapsedSeconds: elapsed.Seconds(),
		ArrivalsPerSec: float64(sent) / elapsed.Seconds(),
		OfferedRate:    *rate,
	}
	if *tracePath == "" {
		rep.Dist = *dist
	}
	if *mode == "http" {
		rep.Batch = *batch
	}
	if *mode == "tcp" {
		rep.Wire = *wire
		if *wire == "binary" {
			rep.Batch = *wireBatch
			rep.Window = *window
		}
	}
	if len(tgts) > 1 {
		rep.Targets = len(tgts)
	}
	rep.Note = *benchNote
	if len(lats) > 0 {
		sort.Float64s(lats)
		rep.RequestP50Millis = lats[len(lats)/2]
		rep.RequestP99Millis = lats[(len(lats)*99)/100]
	}
	// Engine-side latency is a per-server number — meaningful only when a
	// single endpoint served everything (a node, or a router's merged view
	// would need per-node breakdowns the report has no room for).
	if len(metricsBases) == 1 {
		if m, err := serverMetrics(metricsBases[0]); err == nil {
			rep.ServeLatencyP50Micros = m.LatencyP50Micros
			rep.ServeLatencyP99Micros = m.LatencyP99Micros
		}
	}

	if *latOut != "" {
		if err := writeLatencyFile(*latOut, *mode, lats, streamLats); err != nil {
			return err
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *benchDir != "" {
		key := *benchKey
		if key == "" {
			key = rep.Mode
		}
		if err := writeServeBench(*benchDir, key, rep); err != nil {
			return err
		}
	}
	return nil
}

// splitAddrs splits a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// rotation is one logical endpoint with failover alternates (an active
// router first, its standby after): pick returns the address to try, fail
// advances the rotation so the next attempt lands on the alternate.
type rotation struct {
	mu    sync.Mutex
	addrs []string
	cur   int
}

func newRotation(addrs ...string) *rotation { return &rotation{addrs: addrs} }

func (r *rotation) pick() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addrs[r.cur]
}

func (r *rotation) fail() {
	r.mu.Lock()
	r.cur = (r.cur + 1) % len(r.addrs)
	r.mu.Unlock()
}

// clientRetry is the driver-side retry policy: attempts extra tries after
// the first (0 = fail fast), pausing wait between them.
type clientRetry struct {
	attempts int
	wait     time.Duration
}

// getJSONRot GETs path from the rotation, trying each alternate once per
// call (a 5xx — e.g. a standby's 503 — rotates like a transport error).
// Outer polling loops supply the retry-over-time.
func getJSONRot(ep *rotation, path string, out interface{}) error {
	var lastErr error
	for i := 0; i < len(ep.addrs); i++ {
		resp, err := http.Get("http://" + ep.pick() + path)
		if err != nil {
			lastErr = err
			ep.fail()
			continue
		}
		if resp.StatusCode/100 != 2 {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body) //nolint:errcheck // best-effort error text
			resp.Body.Close()
			lastErr = fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(buf.String()))
			ep.fail()
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		return err
	}
	return lastErr
}

// readWorkloadFile loads -trace input in either format the serve CLI
// accepts: a JSON-lines op stream (returned as an opSplit directly) or a
// gentrace trace document. The first non-blank line decides, exactly like
// engine.ReplayReader.
func readWorkloadFile(path string) (opSplit, bool, *workload.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return opSplit{}, false, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	peek, _ := br.Peek(1 << 16)
	firstLine := peek
	if i := bytes.IndexByte(peek, '\n'); i >= 0 {
		firstLine = peek[:i]
	}
	var probe engine.Op
	if json.Unmarshal(bytes.TrimSpace(firstLine), &probe) == nil && probe.Op != "" {
		var ops opSplit
		dec := json.NewDecoder(br)
		for dec.More() {
			var op engine.Op
			if err := dec.Decode(&op); err != nil {
				return opSplit{}, false, nil, fmt.Errorf("loadgen: decoding op stream %s: %v", path, err)
			}
			switch op.Op {
			case "create":
				ops.creates = append(ops.creates, op)
			case "arrive":
				ops.arrives = append(ops.arrives, op)
			default:
				return opSplit{}, false, nil, fmt.Errorf("loadgen: op stream %s: unsupported op %q", path, op.Op)
			}
		}
		return ops, true, nil, nil
	}
	tr, err := workload.ReadJSON(br)
	if err != nil {
		return opSplit{}, false, nil, err
	}
	return opSplit{}, false, tr, nil
}

// writeOpsFile dumps the op stream as JSON lines — creates first, then
// arrivals in trace order — the shape both the serve CLI's stdin path and
// loadgen's own -trace accept, so one dump drives every ingestion path.
func writeOpsFile(path string, ops opSplit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	enc := json.NewEncoder(bw)
	for _, op := range ops.creates {
		if err := enc.Encode(op); err != nil {
			f.Close()
			return err
		}
	}
	for _, op := range ops.arrives {
		if err := enc.Encode(op); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadgenReport is the machine-readable result of one loadgen run.
type loadgenReport struct {
	Mode     string `json:"mode"`
	Arrivals int    `json:"arrivals"`
	Tenants  int    `json:"tenants"`
	// Dist names the synthetic workload mix (uniform/zipf/bundled); empty
	// for trace-driven runs.
	Dist        string `json:"dist,omitempty"`
	Concurrency int    `json:"concurrency"`
	Batch       int    `json:"batch,omitempty"`
	// Wire names the TCP frame encoding (json/binary); Window is the
	// windowed-ack in-flight budget (0 = no acks). Both tcp-mode only.
	Wire   string `json:"wire,omitempty"`
	Window int    `json:"window,omitempty"`
	// Targets counts the endpoints a -targets run partitioned tenants
	// across; absent for single-endpoint runs.
	Targets int `json:"targets,omitempty"`
	// OfferedRate is the open-loop arrivals/s target (0 = closed loop);
	// compare with ArrivalsPerSec to see whether the server kept up.
	OfferedRate    float64 `json:"offered_rate_per_sec,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ArrivalsPerSec float64 `json:"arrivals_per_sec"`
	// Request latencies are client-side per-HTTP-request round trips;
	// absent in tcp mode (the framed protocol acks once per stream).
	RequestP50Millis float64 `json:"request_p50_ms,omitempty"`
	RequestP99Millis float64 `json:"request_p99_ms,omitempty"`
	// Serve latencies are the engine-side per-arrival quantiles.
	ServeLatencyP50Micros float64 `json:"serve_latency_p50_us,omitempty"`
	ServeLatencyP99Micros float64 `json:"serve_latency_p99_us,omitempty"`
	// Note carries free-form run context (-bench-note), e.g. the machine
	// shape a cluster ratio was measured on.
	Note string `json:"note,omitempty"`
}

// opSplit is a trace rewritten as creates + arrivals in op form.
type opSplit struct {
	creates []engine.Op
	arrives []engine.Op
}

// traceToOps mirrors engine.ReplayTrace's fan-out: tenant-%03d names,
// arrival i to tenant i%tenants — so a driven server lands on the same
// snapshots as the stdin path.
func traceToOps(tr *workload.Trace, tenants int) opSplit {
	if tenants < 1 {
		tenants = 1
	}
	in := tr.Instance
	n := in.Space.Len()
	u := in.Universe()
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = in.Space.Distance(i, j)
		}
	}
	bySize := make([]float64, u+1)
	for k := 1; k <= u; k++ {
		bySize[k] = in.Costs.Cost(0, commodity.Full(k))
	}
	var out opSplit
	for i := 0; i < tenants; i++ {
		out.creates = append(out.creates, engine.Op{
			Op: "create", Tenant: fmt.Sprintf("tenant-%03d", i),
			Universe: u, Distances: dist, CostBySize: bySize,
		})
	}
	for i, r := range in.Requests {
		out.arrives = append(out.arrives, engine.Op{
			Op: "arrive", Tenant: fmt.Sprintf("tenant-%03d", i%tenants),
			Point: r.Point, Demands: r.Demands.IDs(),
		})
	}
	return out
}

// tenantWorker maps a tenant name to its driving worker. Hashing (rather
// than parsing a tenant-%03d index) keeps the partition stable for
// arbitrary tenant names in op-stream inputs; per-tenant arrival order is
// preserved either way because a tenant always lands on one worker.
func tenantWorker(tenant string, conc int) int {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	return int(h.Sum32() % uint32(conc))
}

// runCreates registers the tenants: POSTs in http mode, one awaited framed
// stream per target in tcp mode. Each create goes to the same target its
// tenant's arrivals will drive (worker w drives tgts[w mod len]). In retry
// mode creates go one per attempt so a replayed create that already landed
// (duplicate tenant / 409) counts as success instead of failing the group.
func runCreates(mode string, tgts []*rotation, creates []engine.Op, conc int, rp clientRetry) error {
	byTarget := make([][]engine.Op, len(tgts))
	for _, op := range creates {
		t := tenantWorker(op.Tenant, conc) % len(tgts)
		byTarget[t] = append(byTarget[t], op)
	}
	for t, group := range byTarget {
		if len(group) == 0 {
			continue
		}
		switch {
		case mode == "http":
			for _, op := range group {
				if err := createHTTP(tgts[t], op, rp); err != nil {
					return fmt.Errorf("loadgen: creating %s: %v", op.Tenant, err)
				}
			}
		case rp.attempts > 0:
			for _, op := range group {
				if err := createTCP(tgts[t], op, rp); err != nil {
					return fmt.Errorf("loadgen: creating %s: %v", op.Tenant, err)
				}
			}
		default:
			if err := streamTCP(tgts[t].pick(), group); err != nil {
				return err
			}
		}
	}
	return nil
}

// createHTTP registers one tenant over HTTP, retrying across the rotation.
// A 409 on a retry is a replay of a create that landed before the failure.
func createHTTP(ep *rotation, op engine.Op, rp clientRetry) error {
	body := map[string]interface{}{
		"universe": op.Universe, "distances": op.Distances, "cost_by_size": op.CostBySize,
	}
	for attempt := 0; ; attempt++ {
		_, status, err := postJSONStatus(ep.pick(), "/v1/tenants/"+op.Tenant, body)
		if err == nil {
			return nil
		}
		if attempt > 0 && status == http.StatusConflict {
			return nil
		}
		if attempt >= rp.attempts {
			return err
		}
		ep.fail()
		time.Sleep(rp.wait)
	}
}

// createTCP registers one tenant over its own framed stream, retrying
// across the rotation with the same replayed-create tolerance.
func createTCP(ep *rotation, op engine.Op, rp clientRetry) error {
	for attempt := 0; ; attempt++ {
		err := streamTCP(ep.pick(), []engine.Op{op})
		if err == nil {
			return nil
		}
		if attempt > 0 && errors.Is(err, errStreamDuplicate) {
			return nil
		}
		if attempt >= rp.attempts {
			return err
		}
		ep.fail()
		time.Sleep(rp.wait)
	}
}

// driveWork is one worker's pre-partitioned (and, in tcp mode,
// pre-rendered) share of the arrival stream.
type driveWork struct {
	ops      []engine.Op // http mode; also tcp retry mode (resume re-renders)
	blob     []byte      // tcp closed loop: concatenated frames, ready to write
	frames   [][]byte    // tcp open loop (json): one pre-rendered frame per arrival
	bin      []binFrame  // tcp binary wire with pacing and/or windowed acks
	window   int
	arrivals int
	// wire/wireBatch survive into tcp retry mode, where each attempt
	// renders frames from the ops that remain after the resume cursor.
	wire      string
	wireBatch int
	// rate is this worker's open-loop target in arrivals/s — its
	// proportional share of the global -rate (0 = closed loop).
	rate float64
}

// binFrame is one pre-rendered binary wire frame (length prefix included)
// with the arrival count it carries (0 for BIND and WINDOW frames).
type binFrame struct {
	data     []byte
	arrivals int
}

// renderBinary renders one worker's ops as binary wire frames: a leading
// WINDOW frame when windowed acks are on, a BIND on each tenant's first
// use, and arrivals coalesced per tenant into BATCH frames (a bare ARRIVE
// for singletons) of at most batchCap arrivals. Coalescing reorders ops
// across tenants — each tenant's buffer is flushed when it fills, not when
// another tenant's op interleaves — which is safe because tenants are
// independent instances; per-tenant arrival order is preserved, so
// snapshots are byte-identical to any other interleaving.
func renderBinary(ops []engine.Op, batchCap, window int) ([]binFrame, error) {
	var out []binFrame
	var fb bytes.Buffer
	emit := func(payload []byte, arrivals int) error {
		fb.Reset()
		if err := server.WriteFrame(&fb, payload); err != nil {
			return err
		}
		out = append(out, binFrame{data: append([]byte(nil), fb.Bytes()...), arrivals: arrivals})
		return nil
	}
	if window > 0 {
		if err := emit(server.AppendWireWindow(nil, window, false), 0); err != nil {
			return nil, err
		}
	}
	refs := make(map[string]uint64)
	pending := make(map[string][]server.WireItem)
	var order []string // tenants in first-seen order, for a deterministic final drain
	flush := func(tenant string) error {
		items := pending[tenant]
		if len(items) == 0 {
			return nil
		}
		ref, ok := refs[tenant]
		if !ok {
			ref = uint64(len(refs))
			refs[tenant] = ref
			if err := emit(server.AppendWireBind(nil, ref, tenant), 0); err != nil {
				return err
			}
		}
		var payload []byte
		if len(items) == 1 {
			payload = server.AppendWireArrive(nil, ref, items[0].Point, items[0].Demands)
		} else {
			payload = server.AppendWireBatch(nil, ref, items)
		}
		if err := emit(payload, len(items)); err != nil {
			return err
		}
		pending[tenant] = items[:0]
		return nil
	}
	for _, op := range ops {
		items, seen := pending[op.Tenant]
		if !seen {
			order = append(order, op.Tenant)
		}
		pending[op.Tenant] = append(items, server.WireItem{Point: op.Point, Demands: op.Demands})
		if len(pending[op.Tenant]) >= batchCap {
			if err := flush(op.Tenant); err != nil {
				return nil, err
			}
		}
	}
	for _, tenant := range order {
		if err := flush(tenant); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// prepareDrive partitions the arrivals across conc workers (tenant t on
// worker t%conc, preserving per-tenant order) and, in tcp mode, renders the
// frames up front: one blob per worker in closed-loop mode, individual
// frames when an open-loop -rate or an ack window needs per-send control.
// Each worker's rate is its arrival share of the global rate, so all
// workers finish the schedule together and the offered aggregate equals
// -rate.
func prepareDrive(mode string, ops opSplit, conc int, rate float64, wire string, wireBatch, window int, rp clientRetry) ([]driveWork, error) {
	work := make([]driveWork, conc)
	for _, op := range ops.arrives {
		w := &work[tenantWorker(op.Tenant, conc)]
		w.ops = append(w.ops, op)
		w.arrivals++
	}
	if rate > 0 && len(ops.arrives) > 0 {
		for i := range work {
			work[i].rate = rate * float64(work[i].arrivals) / float64(len(ops.arrives))
		}
	}
	if mode != "tcp" {
		return work, nil
	}
	if rp.attempts > 0 {
		// Retry mode keeps the raw ops: a broken stream resumes by asking
		// the cluster how much was admitted and re-rendering the rest.
		for i := range work {
			work[i].wire, work[i].wireBatch, work[i].window = wire, wireBatch, window
		}
		return work, nil
	}
	for i := range work {
		switch {
		case wire == "binary":
			bin, err := renderBinary(work[i].ops, wireBatch, window)
			if err != nil {
				return nil, err
			}
			if rate == 0 && window == 0 {
				// No pacing, no acks: collapse into one blob and take the
				// bulk-write path.
				var blob bytes.Buffer
				for _, fr := range bin {
					blob.Write(fr.data)
				}
				work[i].blob = blob.Bytes()
			} else {
				work[i].bin = bin
				work[i].window = window
			}
		case rate > 0:
			frames := make([][]byte, 0, len(work[i].ops))
			for _, op := range work[i].ops {
				fr, err := renderFrame(op)
				if err != nil {
					return nil, err
				}
				frames = append(frames, fr)
			}
			work[i].frames = frames
		default:
			var blob bytes.Buffer
			for _, op := range work[i].ops {
				payload, err := json.Marshal(op)
				if err != nil {
					return nil, err
				}
				if err := server.WriteFrame(&blob, payload); err != nil {
					return nil, err
				}
			}
			work[i].blob = blob.Bytes()
		}
		work[i].ops = nil
	}
	return work, nil
}

func renderFrame(op engine.Op) ([]byte, error) {
	payload, err := json.Marshal(op)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := server.WriteFrame(&buf, payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// pace sleeps until arrival idx's scheduled send time under an open-loop
// schedule of rate arrivals/s started at start; no-op in closed-loop mode.
func pace(start time.Time, rate float64, idx int) {
	if rate <= 0 {
		return
	}
	target := start.Add(time.Duration(float64(idx) / rate * float64(time.Second)))
	if d := time.Until(target); d > 0 {
		time.Sleep(d)
	}
}

// runArrivals fans the prepared work across its workers — worker w driving
// tgts[w mod len(tgts)] — and returns client-side latencies: per-request
// round trips in http mode, per-stream round trips (dial to ack) in tcp
// mode. Both in milliseconds.
func runArrivals(mode string, tgts, metricsBases []*rotation, work []driveWork, batch int, rp clientRetry) (reqLats, streamLats []float64, err error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := range work {
		if work[w].arrivals == 0 {
			continue
		}
		target := tgts[w%len(tgts)]
		var httpEp *rotation
		if len(metricsBases) > 0 {
			httpEp = metricsBases[w%len(metricsBases)]
		}
		wg.Add(1)
		go func(w driveWork) {
			defer wg.Done()
			var lats []float64
			var err error
			start := time.Now()
			switch {
			case mode == "http":
				lats, err = driveHTTP(target, w.ops, batch, w.rate, rp)
			case rp.attempts > 0:
				err = streamResumable(target, httpEp, w, rp)
			case w.bin != nil:
				err = streamBinary(target.pick(), w.bin, w.rate, w.window, w.arrivals)
			case w.rate > 0:
				err = streamFramesPaced(target.pick(), w.frames, w.rate)
			default:
				err = streamBlob(target.pick(), w.blob, w.arrivals)
			}
			stream := float64(time.Since(start).Microseconds()) / 1e3
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			reqLats = append(reqLats, lats...)
			if mode != "http" {
				streamLats = append(streamLats, stream)
			}
			mu.Unlock()
		}(work[w])
	}
	wg.Wait()
	return reqLats, streamLats, firstErr
}

// streamResumable drives one worker's ops with failover: every attempt
// streams whatever remains past the resume cursor, and a broken stream
// recovers by polling the cluster for each tenant's admitted count (GET
// /v1/tenants/{id}/served) before retrying — possibly against the rotation's
// alternate router. Cursors assume this loadgen run is each tenant's only
// writer, starting at stream position 0 (the same assumption the snapshot
// goldens make), so admitted counts translate directly into op indices.
func streamResumable(ep, httpEp *rotation, w driveWork, rp clientRetry) error {
	admitted := make(map[string]int64)
	for attempt := 0; ; attempt++ {
		remaining := w.ops
		if attempt > 0 {
			if err := pollAdmitted(httpEp, w.ops, admitted, rp.wait); err != nil {
				return err
			}
			remaining = trimAdmitted(w.ops, admitted)
		}
		err := streamOnce(ep.pick(), remaining, w)
		if err == nil {
			return nil
		}
		if attempt >= rp.attempts {
			return err
		}
		ep.fail()
		time.Sleep(rp.wait)
	}
}

// streamOnce renders and drives one attempt's remaining ops.
func streamOnce(target string, ops []engine.Op, w driveWork) error {
	if len(ops) == 0 {
		return nil
	}
	if w.wire == "binary" {
		bin, err := renderBinary(ops, w.wireBatch, w.window)
		if err != nil {
			return err
		}
		arrivals := 0
		for _, fr := range bin {
			arrivals += fr.arrivals
		}
		return streamBinary(target, bin, w.rate, w.window, arrivals)
	}
	if w.rate > 0 {
		frames := make([][]byte, 0, len(ops))
		for _, op := range ops {
			fr, err := renderFrame(op)
			if err != nil {
				return err
			}
			frames = append(frames, fr)
		}
		return streamFramesPaced(target, frames, w.rate)
	}
	var blob bytes.Buffer
	for _, op := range ops {
		payload, err := json.Marshal(op)
		if err != nil {
			return err
		}
		if err := server.WriteFrame(&blob, payload); err != nil {
			return err
		}
	}
	return streamBlob(target, blob.Bytes(), len(ops))
}

// pollAdmitted learns each tenant's admitted count — the resume cursor
// after a broken stream. It waits for the count to hold still across two
// polls so frames from the dead connection that are still draining (or a
// follower promotion settling) get counted before the replay is cut.
func pollAdmitted(httpEp *rotation, ops []engine.Op, out map[string]int64, wait time.Duration) error {
	if httpEp == nil {
		return fmt.Errorf("loadgen: no HTTP endpoint to recover the resume cursor from")
	}
	if wait < 10*time.Millisecond {
		wait = 10 * time.Millisecond
	}
	seen := make(map[string]bool)
	deadline := time.Now().Add(30 * time.Second)
	for _, op := range ops {
		if seen[op.Tenant] {
			continue
		}
		seen[op.Tenant] = true
		var doc struct {
			Served   int64 `json:"served"`
			Admitted int64 `json:"admitted"`
		}
		prev := int64(-1)
		for {
			if err := getJSONRot(httpEp, "/v1/tenants/"+op.Tenant+"/served", &doc); err != nil {
				if time.Now().After(deadline) {
					return fmt.Errorf("loadgen: resume cursor for %s: %v", op.Tenant, err)
				}
				time.Sleep(wait)
				continue
			}
			if doc.Admitted == prev {
				out[op.Tenant] = doc.Admitted
				break
			}
			prev = doc.Admitted
			if time.Now().After(deadline) {
				out[op.Tenant] = doc.Admitted
				break
			}
			time.Sleep(wait)
		}
	}
	return nil
}

// trimAdmitted drops each tenant's already-admitted prefix from the op
// stream — what remains is exactly what the cluster has not seen.
func trimAdmitted(ops []engine.Op, admitted map[string]int64) []engine.Op {
	cut := make(map[string]int64, len(admitted))
	var out []engine.Op
	for _, op := range ops {
		if cut[op.Tenant] < admitted[op.Tenant] {
			cut[op.Tenant]++
			continue
		}
		out = append(out, op)
	}
	return out
}

// streamFramesPaced writes one worker's frames over a single connection on
// its open-loop schedule (flushing per frame so pacing is visible on the
// wire), half-closes and checks the server's ack.
func streamFramesPaced(target string, frames [][]byte, rate float64) error {
	conn, err := net.Dial("tcp", target)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	start := time.Now()
	for i, fr := range frames {
		pace(start, rate, i)
		if _, err := bw.Write(fr); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return finishStream(conn, len(frames))
}

// streamBlob writes a pre-rendered frame blob over one connection,
// half-closes and checks the server's ack.
func streamBlob(target string, blob []byte, arrivals int) error {
	conn, err := net.Dial("tcp", target)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := conn.Write(blob); err != nil {
		return err
	}
	return finishStream(conn, arrivals)
}

// streamBinary drives one worker's pre-rendered binary frames over a single
// connection, pacing sends under an open-loop rate and honoring a
// windowed-ack budget. A reader goroutine owns every inbound frame: ACKs
// advance the in-flight budget, and the stream's JSON result frame ends it.
func streamBinary(target string, frames []binFrame, rate float64, window int, arrivals int) error {
	conn, err := net.Dial("tcp", target)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)

	var (
		mu     sync.Mutex
		cond   = sync.NewCond(&mu)
		acked  int
		rdErr  error
		result *server.TCPResult
	)
	done := make(chan struct{})
	fail := func(err error) {
		mu.Lock()
		rdErr = err
		cond.Broadcast()
		mu.Unlock()
	}
	go func() {
		defer close(done)
		br := bufio.NewReaderSize(conn, 1<<16)
		buf := make([]byte, 0, 4096)
		for {
			frame, err := server.ReadFrame(br, buf)
			if err != nil {
				fail(err)
				return
			}
			if server.IsBinaryFrame(frame) {
				op, body, err := server.WireFrameKind(frame)
				if err == nil && op != server.WireAck {
					err = fmt.Errorf("unexpected binary op 0x%02x from server", op)
				}
				if err != nil {
					fail(err)
					return
				}
				ack, err := server.DecodeWireAck(body)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				acked += len(ack.Codes)
				cond.Broadcast()
				mu.Unlock()
				buf = frame[:0]
				continue
			}
			var res server.TCPResult
			if err := json.Unmarshal(frame, &res); err != nil {
				fail(err)
				return
			}
			mu.Lock()
			result = &res
			cond.Broadcast()
			mu.Unlock()
			return
		}
	}()

	sent := 0
	start := time.Now()
	for _, fr := range frames {
		pace(start, rate, sent)
		if window > 0 && fr.arrivals > 0 {
			mu.Lock()
			if rdErr == nil && sent+fr.arrivals-acked > window {
				// About to block on acks: frames parked in our write buffer
				// are invisible to the server, so push them first.
				mu.Unlock()
				if err := bw.Flush(); err != nil {
					return err
				}
				mu.Lock()
				for rdErr == nil && sent+fr.arrivals-acked > window {
					cond.Wait()
				}
			}
			err := rdErr
			mu.Unlock()
			if err != nil {
				return fmt.Errorf("loadgen: ack stream: %v", err)
			}
		}
		if _, err := bw.Write(fr.data); err != nil {
			return err
		}
		sent += fr.arrivals
		if rate > 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			return err
		}
	}
	<-done
	mu.Lock()
	res, readErr, ackTotal := result, rdErr, acked
	mu.Unlock()
	if res == nil {
		return fmt.Errorf("loadgen: stream ended without result: %v", readErr)
	}
	if !res.OK {
		return fmt.Errorf("loadgen: server rejected stream: %s", res.Error)
	}
	if res.Arrivals != arrivals {
		return fmt.Errorf("loadgen: server acked %d of %d arrivals", res.Arrivals, arrivals)
	}
	if window > 0 && ackTotal != arrivals {
		return fmt.Errorf("loadgen: windowed stream acked %d of %d arrivals", ackTotal, arrivals)
	}
	return nil
}

// errStreamDuplicate marks a stream the server rejected for a duplicate
// tenant — on a retry, the footprint of a create that landed before the
// failure, which the retrying caller treats as success.
var errStreamDuplicate = errors.New("loadgen: stream rejected: duplicate tenant")

// finishStream half-closes the write side of a frame stream and verifies
// the server's single result frame acks exactly the arrivals sent — the
// shared tail of every TCP drive path.
func finishStream(conn net.Conn, arrivals int) error {
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			return err
		}
	}
	frame, err := server.ReadFrame(bufio.NewReader(conn), nil)
	if err != nil {
		return err
	}
	var res server.TCPResult
	if err := json.Unmarshal(frame, &res); err != nil {
		return err
	}
	if !res.OK {
		if res.Code == server.CodeDuplicateTenant {
			return errStreamDuplicate
		}
		return fmt.Errorf("loadgen: server rejected stream: %s", res.Error)
	}
	if res.Arrivals != arrivals {
		return fmt.Errorf("loadgen: server acked %d of %d arrivals", res.Arrivals, arrivals)
	}
	return nil
}

// driveHTTP sends one worker's arrivals as batched POSTs, measuring each
// request's round trip. Batches coalesce per tenant across the op stream —
// tenants are independent instances, so posting tenant B's arrivals before
// tenant A's earlier ones changes no tenant's outcome as long as each
// tenant's own order is preserved, and a tenant-interleaved workload still
// fills real batches (the same reordering renderBinary applies on the
// binary wire). With an open-loop rate, each batch waits for its first
// arrival's slot on the schedule before posting.
func driveHTTP(ep *rotation, ops []engine.Op, batch int, rate float64, rp clientRetry) ([]float64, error) {
	if batch < 1 {
		batch = 1
	}
	type arrival struct {
		Point   int   `json:"point"`
		Demands []int `json:"demands"`
	}
	var lats []float64
	clock := time.Now()
	sent := 0
	pos := make(map[string]int64)   // per-tenant stream cursor (idempotency keys)
	seeded := make(map[string]bool) // tenants whose cursor was read from the cluster
	pending := make(map[string][]arrival)
	var order []string // tenants in first-seen order, for a deterministic final drain
	flush := func(tenant string) error {
		group := pending[tenant]
		if len(group) == 0 {
			return nil
		}
		pace(clock, rate, sent)
		body := map[string]interface{}{"arrivals": group}
		start := time.Now()
		var err error
		if rp.attempts > 0 {
			// Key the batch by its stream position so replays after an
			// ambiguous failure are trimmed server-side, never double-served.
			// The cursor starts at the tenant's current admitted count (read
			// once per tenant), so a keyed run resumes a pre-served tenant —
			// an earlier phase, a run cut short — instead of wrongly deduping
			// against position 0. Keys still assume this run is the tenant's
			// only concurrent writer, which is why they are opt-in via -retry.
			if !seeded[tenant] {
				var doc struct {
					Admitted int64 `json:"admitted"`
				}
				for attempt := 0; ; attempt++ {
					err = getJSONRot(ep, "/v1/tenants/"+tenant+"/served", &doc)
					if err == nil || attempt >= rp.attempts {
						break
					}
					time.Sleep(rp.wait)
				}
				if err != nil {
					return fmt.Errorf("loadgen: reading %s's resume cursor: %v", tenant, err)
				}
				pos[tenant] = doc.Admitted
				seeded[tenant] = true
			}
			hdr := map[string]string{server.IdemHeader: strconv.FormatInt(pos[tenant], 10)}
			for attempt := 0; ; attempt++ {
				_, _, err = postJSONHdr(ep.pick(), "/v1/tenants/"+tenant+"/arrive", body, hdr)
				if err == nil || attempt >= rp.attempts {
					break
				}
				ep.fail()
				time.Sleep(rp.wait)
			}
		} else {
			_, err = postJSON(ep.pick(), "/v1/tenants/"+tenant+"/arrive", body)
		}
		lats = append(lats, float64(time.Since(start).Microseconds())/1e3)
		sent += len(group)
		pos[tenant] += int64(len(group))
		pending[tenant] = group[:0]
		return err
	}
	for _, op := range ops {
		group, seen := pending[op.Tenant]
		if !seen {
			order = append(order, op.Tenant)
		}
		pending[op.Tenant] = append(group, arrival{Point: op.Point, Demands: op.Demands})
		if len(pending[op.Tenant]) >= batch {
			if err := flush(op.Tenant); err != nil {
				return lats, err
			}
		}
	}
	for _, tenant := range order {
		if err := flush(tenant); err != nil {
			return lats, err
		}
	}
	return lats, nil
}

// streamTCP sends ops as one framed stream, half-closes and awaits the
// server's result frame. The ack's arrival count must match the arrive ops
// sent (zero for a creates-only stream).
func streamTCP(target string, ops []engine.Op) error {
	arrivals := 0
	conn, err := net.Dial("tcp", target)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<16)
	for _, op := range ops {
		payload, err := json.Marshal(op)
		if err != nil {
			return err
		}
		if err := server.WriteFrame(bw, payload); err != nil {
			return err
		}
		if op.Op == "arrive" {
			arrivals++
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return finishStream(conn, arrivals)
}

func postJSON(host, path string, body interface{}) ([]byte, error) {
	data, _, err := postJSONHdr(host, path, body, nil)
	return data, err
}

// postJSONStatus is postJSON with the response status exposed, for callers
// that treat specific statuses (a create replay's 409) as success.
func postJSONStatus(host, path string, body interface{}) ([]byte, int, error) {
	return postJSONHdr(host, path, body, nil)
}

func postJSONHdr(host, path string, body interface{}, hdr map[string]string) ([]byte, int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequest("POST", "http://"+host+path, bytes.NewReader(data))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // best-effort error text
	if resp.StatusCode/100 != 2 {
		return buf.Bytes(), resp.StatusCode, fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, buf.String())
	}
	return buf.Bytes(), resp.StatusCode, nil
}

func serverMetrics(ep *rotation) (engine.Metrics, error) {
	var m engine.Metrics
	err := getJSONRot(ep, "/v1/metrics", &m)
	return m, err
}

// sumServed totals the served counts across all polled endpoints (a
// cluster router's /v1/metrics reports its own cluster-wide total, so a
// router counts once; a rotation counts once via whichever alternate
// answers).
func sumServed(eps []*rotation) (int64, error) {
	var total int64
	for _, ep := range eps {
		m, err := serverMetrics(ep)
		if err != nil {
			return total, err
		}
		total += m.Served
	}
	return total, nil
}

// waitServed polls the endpoints until their summed served count reaches
// want.
func waitServed(eps []*rotation, want int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		total, err := sumServed(eps)
		if err == nil && total >= want {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("loadgen: waiting for drain: %v", err)
			}
			return fmt.Errorf("loadgen: servers served %d of %d arrivals before timeout", total, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// latencyDoc is the -latency-out artifact: the client-side latency
// distribution in full — exact quantiles from the sorted samples plus the
// power-of-two histogram (obs.HistSummary) so runs can be merged or
// re-quantiled downstream.
type latencyDoc struct {
	Mode string `json:"mode"`
	// Unit names what one sample measures: an HTTP request round trip or a
	// whole framed-TCP stream (dial to result frame).
	Unit       string  `json:"unit"`
	Count      int     `json:"count"`
	P50Millis  float64 `json:"p50_ms"`
	P90Millis  float64 `json:"p90_ms"`
	P99Millis  float64 `json:"p99_ms"`
	P999Millis float64 `json:"p999_ms"`
	MaxMillis  float64 `json:"max_ms"`
	// Hist is the same power-of-two-bucket histogram the engine exposes
	// (buckets in nanoseconds, quantiles in microseconds).
	Hist obs.HistSummary `json:"hist"`
}

// writeLatencyFile renders the client-side latency histogram: per-request
// samples in http mode, per-stream samples in tcp mode.
func writeLatencyFile(path, mode string, reqLats, streamLats []float64) error {
	samples, unit := reqLats, "http_request_round_trip"
	if mode != "http" {
		samples, unit = streamLats, "tcp_stream_round_trip"
	}
	doc := latencyDoc{Mode: mode, Unit: unit, Count: len(samples)}
	if len(samples) > 0 {
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		exact := func(q float64) float64 {
			i := int(q * float64(len(sorted)))
			if i >= len(sorted) {
				i = len(sorted) - 1
			}
			return sorted[i]
		}
		doc.P50Millis = exact(0.50)
		doc.P90Millis = exact(0.90)
		doc.P99Millis = exact(0.99)
		doc.P999Millis = exact(0.999)
		doc.MaxMillis = sorted[len(sorted)-1]
		var h obs.Hist
		for _, ms := range sorted {
			h.RecordNs(int64(ms * 1e6))
		}
		var sum [obs.HistBuckets]int64
		h.AddTo(&sum)
		doc.Hist = obs.Summarize(sum)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeServeBench writes or updates BENCH_serve.json in dir under key
// (default: the transport mode; cluster runs pass -bench-key so router and
// direct-fleet numbers land in their own sections), so runs accumulate
// into one artifact.
func writeServeBench(dir, key string, rep loadgenReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_serve.json")
	doc := struct {
		Benchmark string                   `json:"benchmark"`
		Modes     map[string]loadgenReport `json:"modes"`
	}{Benchmark: "omflp loadgen: network serve throughput", Modes: map[string]loadgenReport{}}
	if data, err := os.ReadFile(path); err == nil {
		json.Unmarshal(data, &doc) //nolint:errcheck // a corrupt file is simply rewritten
		if doc.Modes == nil {
			doc.Modes = map[string]loadgenReport{}
		}
	}
	doc.Modes[key] = rep
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
