package omflp

import (
	"io"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/commodity"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/instance"
	"repro/internal/lowerbound"
	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Core problem types.
type (
	// Set is a commodity set (dynamic bitset); the zero value is empty.
	Set = commodity.Set
	// Request demands a commodity set at a point of the metric space.
	Request = instance.Request
	// Instance couples a space, a cost model and a request sequence.
	Instance = instance.Instance
	// Facility is an opened facility: point plus configuration.
	Facility = instance.Facility
	// Solution lists facilities and per-request connections.
	Solution = instance.Solution
	// Space is a finite metric space.
	Space = metric.Space
	// CostModel is a construction cost function f_m^σ.
	CostModel = cost.Model
	// Algorithm is an online OMFLP algorithm.
	Algorithm = online.Algorithm
	// Factory constructs algorithms for experiment runs.
	Factory = online.Factory
	// Options configures the core algorithms.
	Options = core.Options
	// Table is a rendered experiment result.
	Table = report.Table
)

// Streaming serving engine (see internal/engine): a long-lived, sharded
// multi-tenant subsystem that ingests arrival streams continuously and
// exposes deterministic per-tenant snapshots plus engine-wide metrics.
type (
	// Engine hosts many independent OMFLP instances ("tenants") sharded
	// across goroutines with bounded mailboxes.
	Engine = engine.Engine
	// EngineConfig selects the algorithm, shard count, mailbox capacity
	// and seed of an Engine.
	EngineConfig = engine.Config
	// Snapshot is a consistent per-tenant state cut: open facilities,
	// assignments, cost-so-far vs the dual lower bound.
	Snapshot = engine.TenantSnapshot
	// Metrics is an engine-wide health report: arrivals/s, p50/p99 serve
	// latency, queue depth.
	Metrics = engine.Metrics
	// EngineOp is one line of the engine's JSON-lines ingestion protocol.
	EngineOp = engine.Op
	// Checkpoint is a durable, restorable record of engine state (format
	// v2): per tenant, the serializable substrate, a base snapshot of the
	// algorithm's serialized state, and the arrival-log segment served
	// since the base. Restore loads the state and replays only the
	// segment; legacy v1 checkpoints (full arrival history) stay readable.
	Checkpoint = engine.Checkpoint
	// RestoreStats reports what a checkpoint restore did: tenants rebuilt,
	// total arrivals represented, arrivals actually replayed (the tail
	// segments) and base-state bytes loaded.
	RestoreStats = engine.RestoreStats
	// StateCodec is implemented by algorithms whose complete serving state
	// serializes and restores without replaying history — PD-OMFLP,
	// RAND-OMFLP, the heavy-aware extension and the online baselines all
	// do. It is the foundation of checkpoint format v2.
	StateCodec = online.StateCodec
)

// Checkpoint format versions: CheckpointVersion is the v2 format Checkpoint
// writes (base states + tail segments); CheckpointVersionV1 the legacy
// full-replay format, still accepted by Restore.
const (
	CheckpointVersion   = engine.CheckpointVersion
	CheckpointVersionV1 = engine.CheckpointVersionV1
)

// NewEngine starts a streaming serving engine; see EngineConfig. The
// returned error reports an unknown algorithm name.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	return engine.NewChecked(cfg)
}

// Network serving layer (see internal/server): an HTTP API and a
// length-prefixed TCP op protocol multiplexed onto one shared Engine, with
// periodic checkpointing to disk and restore-on-start. The CLI front end is
// "omflp serve -listen-http/-listen-tcp"; "omflp loadgen" drives it.
type (
	// Server binds the HTTP/TCP listeners over one engine.
	Server = server.Server
	// ServerConfig selects listen addresses, checkpoint directory and
	// interval, and the underlying engine configuration.
	ServerConfig = server.Config
	// ServerMetrics is the server health report: engine metrics (with the
	// per-shard breakdown) plus checkpoint size/latency and restore stats.
	ServerMetrics = server.Metrics
)

// NewServer creates a network serving layer (restoring any checkpoint found
// in ServerConfig.CheckpointDir); call Start to bind its listeners and
// Shutdown for a graceful drain + final checkpoint.
func NewServer(cfg ServerConfig) (*Server, error) {
	return server.New(cfg)
}

// ReadCheckpoint reads a checkpoint file written by the serving layer (or
// Checkpoint.WriteFile); replay it onto a fresh engine with Engine.Restore.
var ReadCheckpoint = engine.ReadCheckpointFile

// Cluster serving: a Router fronts N worker Servers with the same HTTP API
// and TCP framing, owning the tenant→node map, migrating tenants live and
// recovering workers from their checkpoints. The CLI front end is
// "omflp serve -cluster-router -nodes addr1,addr2,...".
type (
	// Router is the cluster front; see internal/cluster.
	Router = cluster.Router
	// RouterConfig selects the router's listen addresses, the worker node
	// list, the placement policy and the health/rebalance cadence.
	RouterConfig = cluster.Config
	// ClusterMetrics is the merged cluster view GET /v1/metrics serves
	// from a router: per-node reports plus aggregation-safe totals.
	ClusterMetrics = cluster.Metrics
)

// NewRouter creates a cluster router over the configured worker nodes;
// call Start to probe the fleet and bind listeners, Shutdown to stop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	return cluster.New(cfg)
}

// Observability (see internal/obs): sampled op tracing with per-stage
// latency histograms, a lock-free flight recorder, hand-rolled Prometheus
// text exposition and structured slog logging — shared by the engine, the
// network server and the cluster router. EngineConfig.TraceSample /
// FlightRecords turn tracing on; ServerConfig.EnablePprof gates
// /debug/pprof/.
type (
	// HistSummary is a serialized latency histogram: occupied power-of-two
	// buckets plus pre-computed p50/p99/p999 (microseconds). Summaries
	// merge losslessly across shards and nodes.
	HistSummary = obs.HistSummary
	// StageBreakdown carries one latency histogram per pipeline stage
	// (decode, enqueue, dequeue, serve, ack, total) over traced arrivals.
	StageBreakdown = obs.StageBreakdown
	// FlightRecord is one traced arrival as kept by the flight recorder
	// ring and served by GET /v1/debug/flight: trace id, tenant, shard,
	// outcome, per-stage microseconds and (in merged cluster dumps) the
	// origin node.
	FlightRecord = obs.FlightRecord
	// RuntimeStats is a point-in-time Go runtime health snapshot:
	// goroutines, heap, GC activity.
	RuntimeStats = obs.RuntimeStats
)

// TraceHeader is the HTTP request header carrying a 16-hex-digit trace id
// end to end (router → worker → flight record).
const TraceHeader = server.TraceHeader

// Trace id codecs for TraceHeader and the framed-TCP trace field.
var (
	// TraceIDString formats a trace id as 16 lowercase hex digits.
	TraceIDString = obs.TraceIDString
	// ParseTraceID parses TraceIDString output; malformed input yields 0
	// (untraced).
	ParseTraceID = obs.ParseTraceID
)

// Commodity set constructors.
var (
	// NewSet returns a set of the given commodity IDs.
	NewSet = commodity.New
	// FullSet returns {0..u-1}.
	FullSet = commodity.Full
	// ParseSet parses "{1,2,3}".
	ParseSet = commodity.Parse
)

// Metric space constructors.
var (
	// NewLine builds a 1-d metric from coordinates.
	NewLine = metric.NewLine
	// NewGrid builds n evenly spaced line points spanning a width.
	NewGrid = metric.NewGrid
	// NewEuclidean builds a k-d Euclidean metric.
	NewEuclidean = metric.NewEuclidean
	// NewGraphBuilder accumulates weighted edges; Build yields the
	// shortest-path metric.
	NewGraphBuilder = metric.NewGraphBuilder
	// NewUniform builds the uniform metric.
	NewUniform = metric.NewUniform
	// SinglePoint returns the one-point space of the Theorem 2 game.
	SinglePoint = metric.SinglePoint
	// CheckMetric verifies the metric axioms (O(n³); for tests).
	CheckMetric = metric.Check
)

// Cost model constructors (all size-dependent models satisfy the paper's
// Condition 1; see package cost for validators).
var (
	// PowerLawCost is the class-C model g_x(|σ|) = scale·|σ|^{x/2}.
	PowerLawCost = cost.PowerLaw
	// LinearCost is perCommodity·|σ| (x = 2).
	LinearCost = cost.Linear
	// ConstantCost is a flat cost per facility (x = 0).
	ConstantCost = cost.Constant
	// CeilSqrtCost is the Theorem 2 model ⌈|σ|/√|S|⌉.
	CeilSqrtCost = cost.CeilSqrt
	// PointScaledCost multiplies a base model by per-point factors.
	PointScaledCost = cost.NewPointScaled
)

// NewPD constructs the deterministic PD-OMFLP algorithm (Algorithm 1,
// Theorem 4).
func NewPD(space Space, costs CostModel, opts Options) *core.PDOMFLP {
	return core.NewPDOMFLP(space, costs, opts)
}

// NewPDReference constructs PD-OMFLP with the naive per-arrival bid
// recomputation instead of the incremental accumulators — semantically
// identical to NewPD but O(history × candidates) per arrival. It exists for
// differential testing and benchmarking against the fast path.
func NewPDReference(space Space, costs CostModel, opts Options) *core.PDOMFLP {
	return core.NewPDReference(space, costs, opts)
}

// NewRand constructs the randomized RAND-OMFLP algorithm (Algorithm 2,
// Theorem 19).
func NewRand(space Space, costs CostModel, opts Options, rng *rand.Rand) *core.RandOMFLP {
	return core.NewRandOMFLP(space, costs, opts, rng)
}

// NewHeavyAware constructs the closing-remarks extension that serves heavy
// commodities separately.
func NewHeavyAware(space Space, costs CostModel, opts Options, theta float64) *core.HeavyAware {
	return core.NewHeavyAware(space, costs, opts, theta)
}

// Algorithm factories for harness runs.
var (
	// PDFactory yields PD-OMFLP.
	PDFactory = core.PDFactory
	// RandFactory yields RAND-OMFLP (seeded per run).
	RandFactory = core.RandFactory
	// HeavyFactory yields the heavy-aware extension.
	HeavyFactory = core.HeavyFactory
	// PerCommodityFactory yields the trivial per-commodity baseline.
	PerCommodityFactory = baseline.PerCommodityPDFactory
	// NoPredictionFactory yields the no-prediction greedy strawman.
	NoPredictionFactory = baseline.NoPredictionFactory
)

// Run replays an instance through a factory-constructed algorithm and
// returns the verified solution and its cost.
func Run(f Factory, in *Instance, seed int64) (*Solution, float64, error) {
	return online.Run(f, in, seed, true)
}

// Offline OPT proxies.
var (
	// StarGreedy is the Ravi–Sinha-flavoured offline greedy, with its
	// candidate-star scans fanned across GOMAXPROCS goroutines.
	StarGreedy = baseline.StarGreedy
	// StarGreedyParallel is StarGreedy with an explicit worker count;
	// results are byte-identical for every count.
	StarGreedyParallel = baseline.StarGreedyParallel
	// LocalSearch refines a facility set by add/drop/swap moves, with
	// move evaluation fanned across GOMAXPROCS goroutines.
	LocalSearch = baseline.LocalSearch
	// LocalSearchParallel is LocalSearch with an explicit worker count;
	// results are byte-identical for every count.
	LocalSearchParallel = baseline.LocalSearchParallel
	// BestOffline runs greedy + local search and keeps the better.
	BestOffline = baseline.BestOffline
	// BestOfflineParallel is BestOffline with an explicit worker count.
	BestOfflineParallel = baseline.BestOfflineParallel
	// ExactSmall is the exact branch-and-bound solver (small instances).
	ExactSmall = baseline.ExactSmall
)

// Lower-bound adversaries.
var (
	// NewTheorem2Game builds the Ω(√|S|) single-point game.
	NewTheorem2Game = lowerbound.NewTheorem2Game
	// NewClassCGame builds the Theorem 18 variant with g_x costs.
	NewClassCGame = lowerbound.NewClassCGame
)

// Workload generators.
var (
	// UniformWorkload generates uniform random demand.
	UniformWorkload = workload.Uniform
	// ClusteredWorkload plants cluster centers with known feasible cost.
	ClusteredWorkload = workload.Clustered
	// ZipfWorkload skews commodity popularity.
	ZipfWorkload = workload.Zipf
	// BundledWorkload makes every request demand all of S.
	BundledWorkload = workload.Bundled
)

// ExperimentConfig configures a harness run.
type ExperimentConfig = sim.Config

// ExperimentResult bundles the tables and charts of one experiment.
type ExperimentResult = sim.Result

// Experiments lists every registered experiment (one per paper artifact).
func Experiments() []sim.Experiment { return sim.All() }

// RunExperiment runs a registered experiment by ID (e.g. "thm2", "fig2").
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	return sim.RunByID(id, cfg)
}

// RenderChart renders a chart spec from an experiment result as ASCII.
func RenderChart(w io.Writer, c sim.ChartSpec) error {
	return report.Chart(w, c.Title, 72, 18, c.Series...)
}
