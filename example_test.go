package omflp_test

import (
	"fmt"
	"math/rand"

	omflp "repro"
)

// ExampleNewPD runs the deterministic algorithm on a tiny instance and
// prints the facilities it opens.
func ExampleNewPD() {
	space := omflp.NewLine([]float64{0, 1, 10})
	costs := omflp.PowerLawCost(3, 1, 2) // f^σ = 2·√|σ|
	alg := omflp.NewPD(space, costs, omflp.Options{})

	alg.Serve(omflp.Request{Point: 0, Demands: omflp.NewSet(0, 1)})
	alg.Serve(omflp.Request{Point: 0, Demands: omflp.NewSet(2)})

	// The first request's joint dual reaches f^S = 2√3 before any
	// singleton constraint reaches f^{e} = 2, so PD opens one large
	// facility; the second request connects to it for free.
	for _, f := range alg.Solution().Facilities {
		fmt.Printf("facility at point %d offering %v\n", f.Point, f.Config)
	}
	// Output:
	// facility at point 0 offering {0,1,2}
}

// ExampleNewRand shows the randomized algorithm with a fixed seed.
func ExampleNewRand() {
	space := omflp.SinglePoint()
	costs := omflp.ConstantCost(2, 5)
	alg := omflp.NewRand(space, costs, omflp.Options{}, rand.New(rand.NewSource(1)))

	alg.Serve(omflp.Request{Point: 0, Demands: omflp.FullSet(2)})
	sol := alg.Solution()
	fmt.Println("facilities:", len(sol.Facilities))
	fmt.Println("request links:", len(sol.Assign[0]))
	// Output:
	// facilities: 1
	// request links: 1
}

// ExampleNewTheorem2Game demonstrates the Ω(√|S|) adversary: the
// no-prediction baseline pays exactly √|S| against OPT = 1.
func ExampleNewTheorem2Game() {
	game, err := omflp.NewTheorem2Game(64)
	if err != nil {
		panic(err)
	}
	ratio, _, _ := game.ExpectedRatio(omflp.NoPredictionFactory(nil), 1, 5)
	fmt.Printf("no-prediction ratio on |S|=64: %.0f (= sqrt(64))\n", ratio)
	// Output:
	// no-prediction ratio on |S|=64: 8 (= sqrt(64))
}

// ExampleExactSmall computes an exact offline optimum for a small instance.
func ExampleExactSmall() {
	in := &omflp.Instance{
		Space: omflp.SinglePoint(),
		Costs: omflp.CeilSqrtCost(16), // g(k) = ⌈k/4⌉
		Requests: []omflp.Request{
			{Point: 0, Demands: omflp.NewSet(0)},
			{Point: 0, Demands: omflp.NewSet(1)},
			{Point: 0, Demands: omflp.NewSet(2)},
		},
	}
	res := omflp.ExactSmall(in, 3)
	fmt.Printf("OPT = %.0f with %d facility\n", res.Cost, len(res.Solution.Facilities))
	// Output:
	// OPT = 1 with 1 facility
}

// ExampleRunExperiment regenerates a paper artifact programmatically.
func ExampleRunExperiment() {
	res, err := omflp.RunExperiment("fig2", omflp.ExperimentConfig{Seed: 1, Quick: true})
	if err != nil {
		panic(err)
	}
	// The first row of Figure 2's table: x = 0, both bound factors are 1.
	row := res.Tables[0].Rows[0]
	fmt.Println(row[0], row[1], row[2])
	// Output:
	// 0 1 1
}
